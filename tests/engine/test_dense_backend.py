"""Differential and property tests for the dense (numpy SoA) backend.

Three layers of evidence that ``repro.engine.dense`` is a faithful drop-in
for the reference per-parcel engine:

* **Fuzz differential**: generated scenarios (chaos faults included) run
  under both backends; run-level aggregates must agree within tolerances.
  Tolerances are loose on delay because the dense backend's age buckets
  mix generation times *within* a bucket: after an adaptation reshuffles
  queues mid-run the per-tick delay can transiently diverge, which in turn
  can shift a near-threshold controller decision by one monitoring
  interval.  Raw engine ticks (no adaptations) agree to ~1e-13.
* **Determinism**: the same dense spec twice produces bit-identical
  recorder digests, and dense scenarios pass the full invariant checker
  (mass conservation, queue non-negativity, slot feasibility, ...).
* **Kernel properties**: Hypothesis drives the fused pop kernel against a
  naive per-bucket ledger, checking FIFO order and mass conservation.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.dense import _DRAIN_EPS, DenseEngineRuntime, _pop_rows
from repro.engine.runtime import EngineRuntime
from repro.fuzz.campaign import recorder_digest, run_scenario
from repro.fuzz.generate import build_run, generate_scenario

#: Seeds chosen to cover quiet runs, adaptation-heavy runs (0, 7, 9) and
#: drop-heavy overload runs where delay tolerance matters (2, 5).
DIFF_SEEDS = [0, 1, 2, 5, 7, 9]


def _with_backend(spec, backend: str):
    return dataclasses.replace(
        spec,
        config_overrides={
            **spec.config_overrides,
            "engine_backend": backend,
        },
    )


def _run_aggregates(spec) -> dict:
    run, dynamics = build_run(spec)
    run.run(spec.duration_s, dynamics)
    recorder = run.recorder
    return {
        "runtime": run.runtime,
        "processed": recorder.total_processed(),
        "fraction": recorder.processed_fraction(),
        "mean_delay": recorder.mean_delay(),
        "p99_delay": recorder.delay_percentile(0.99),
        "adaptations": len(recorder.adaptations),
    }


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_fuzz_differential(seed: int) -> None:
    """Reference and dense agree on run-level aggregates per fuzz seed."""
    spec = generate_scenario(seed)
    ref = _run_aggregates(_with_backend(spec, "reference"))
    dense = _run_aggregates(_with_backend(spec, "dense"))

    assert isinstance(ref["runtime"], EngineRuntime)
    assert not isinstance(ref["runtime"], DenseEngineRuntime)
    assert isinstance(dense["runtime"], DenseEngineRuntime)

    assert _rel(ref["processed"], dense["processed"]) < 0.02
    assert abs(ref["fraction"] - dense["fraction"]) < 0.02
    # Delay metrics carry the bucket-mixing divergence (see module docs):
    # require agreement to 30% relative or 0.5 s absolute, whichever is
    # looser.  Calibrated worst case across the seed set is 20% relative
    # on a drop-heavy overload run.
    for key in ("mean_delay", "p99_delay"):
        assert (
            _rel(ref[key], dense[key]) < 0.30
            or abs(ref[key] - dense[key]) < 0.5
        ), f"{key}: reference={ref[key]} dense={dense[key]}"
    # Adaptation counts may shift by one round on near-threshold runs.
    assert abs(ref["adaptations"] - dense["adaptations"]) <= 1


def test_dense_backlog_matches_reference_exactly() -> None:
    """End-of-run queue backlogs are bit-equal on a quiet scenario."""
    spec = generate_scenario(1)
    ref = _run_aggregates(_with_backend(spec, "reference"))
    dense = _run_aggregates(_with_backend(spec, "dense"))
    assert ref["runtime"].total_backlog() == dense["runtime"].total_backlog()


@pytest.mark.parametrize("seed", [0, 2])
def test_dense_is_deterministic(seed: int) -> None:
    """Same dense spec twice -> bit-identical recorder digests."""
    spec = _with_backend(generate_scenario(seed), "dense")
    digests = []
    for _ in range(2):
        run, dynamics = build_run(spec)
        run.run(spec.duration_s, dynamics)
        digests.append(recorder_digest(run.recorder))
    assert digests[0] == digests[1]


@pytest.mark.parametrize("seed", [0, 2, 5, 7])
def test_dense_passes_invariant_checker(seed: int) -> None:
    """Dense scenarios run clean under the full runtime invariant suite."""
    spec = _with_backend(generate_scenario(seed), "dense")
    result = run_scenario(spec, verify_digest=(seed == 0))
    assert result.ok, [
        f"t={v.t_s} {v.invariant}: {v.detail}" for v in result.violations
    ]
    assert result.ticks > 0


# --------------------------------------------------------------------------- #
# Kernel properties (Hypothesis vs a naive per-bucket ledger)
# --------------------------------------------------------------------------- #

counts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
gen_times = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def _naive_pop_row(c_row, m_row, cap):
    """Scalar oldest-first pop: the ledger the fused kernel must match."""
    B = len(c_row)
    take = np.zeros(B)
    tm = np.zeros(B)
    remaining = cap
    for j in range(B - 1, -1, -1):
        t = min(remaining, c_row[j])
        take[j] = t
        if c_row[j] > 0.0:
            tm[j] = m_row[j] * (t / c_row[j])
        remaining -= t
    return take, tm


@st.composite
def pop_cases(draw):
    n_rows = draw(st.integers(min_value=1, max_value=4))
    n_buckets = draw(st.integers(min_value=4, max_value=8))
    cnt = np.array(
        [
            [draw(counts) for _ in range(n_buckets)]
            for _ in range(n_rows)
        ]
    )
    gen = np.array(
        [
            [draw(gen_times) for _ in range(n_buckets)]
            for _ in range(n_rows)
        ]
    )
    caps = np.array(
        [
            draw(
                st.floats(
                    min_value=0.0,
                    max_value=3e6,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            for _ in range(n_rows)
        ]
    )
    return cnt, cnt * gen, caps


@given(pop_cases())
@settings(max_examples=200, deadline=None)
def test_pop_rows_conserves_mass(case) -> None:
    cnt0, mass0, caps = case
    cnt = cnt0.copy()
    mass = mass0.copy()
    rows = np.arange(cnt.shape[0])
    take, tm, popped, before = _pop_rows(cnt, mass, rows, caps)

    total = float(cnt0.sum())
    tol = 1e-6 + 1e-9 * total
    mass_tol = 1e-6 + 1e-9 * float(np.abs(mass0).sum())

    # Bounds: never pop more than a bucket holds, never negative.
    assert (take >= -tol).all()
    assert (take <= cnt0 + tol).all()
    # Popped totals: exactly min(cap, queued), split across buckets.
    np.testing.assert_allclose(before, cnt0.sum(axis=1), atol=tol)
    np.testing.assert_allclose(popped, np.minimum(caps, before), atol=tol)
    np.testing.assert_allclose(take.sum(axis=1), popped, atol=tol)
    # Conservation: what left plus what stayed is what was there.
    np.testing.assert_allclose(cnt + take, cnt0, atol=tol)
    np.testing.assert_allclose(mass + tm, mass0, atol=mass_tol)
    # Fully drained rows are snapped to exactly zero (no residue).
    drained = before - popped < _DRAIN_EPS
    assert (cnt[drained] == 0.0).all()
    assert (mass[drained] == 0.0).all()


@given(pop_cases())
@settings(max_examples=200, deadline=None)
def test_pop_rows_matches_naive_ledger(case) -> None:
    """FIFO (oldest-bucket-first) order and per-bucket splits match the
    scalar ledger within float-reassociation tolerance."""
    cnt0, mass0, caps = case
    cnt = cnt0.copy()
    mass = mass0.copy()
    rows = np.arange(cnt.shape[0])
    take, tm, _, _ = _pop_rows(cnt, mass, rows, caps)

    tol = 1e-6 + 1e-9 * float(cnt0.sum())
    mass_tol = 1e-3 + 1e-9 * float(np.abs(mass0).sum())
    for i in range(cnt0.shape[0]):
        naive_take, naive_tm = _naive_pop_row(cnt0[i], mass0[i], caps[i])
        np.testing.assert_allclose(take[i], naive_take, atol=tol)
        np.testing.assert_allclose(tm[i], naive_tm, atol=mass_tol)

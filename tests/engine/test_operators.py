"""Tests for repro.engine.operators."""

import pytest

from repro.engine.operators import (
    OperatorKind,
    OperatorSpec,
    filter_,
    join,
    map_,
    project,
    sink,
    source,
    top_k,
    union,
    window_aggregate,
)
from repro.errors import PlanError


class TestDefaults:
    def test_window_aggregate_is_stateful_by_default(self):
        op = window_aggregate("w", window_s=10, selectivity=0.1, state_mb=5)
        assert op.stateful

    def test_join_is_stateful_by_default(self):
        assert join("j", selectivity=1.0, state_mb=5).stateful

    def test_filter_is_stateless(self):
        assert not filter_("f", selectivity=0.5).stateful

    def test_source_pinned(self):
        assert source("s", "site-1").pinned_site == "site-1"

    def test_sink_not_splittable_by_default(self):
        """Section 6.2: splitting a sink requires a plan change."""
        assert not sink("out").splittable

    def test_source_cheap_by_default(self):
        assert source("s", "x").cost < 1.0


class TestChainability:
    def test_filter_chainable(self):
        assert filter_("f", selectivity=0.5).chainable

    def test_map_chainable(self):
        assert map_("m").chainable

    def test_project_chainable(self):
        assert project("p", event_bytes=50).chainable

    def test_window_not_chainable(self):
        op = window_aggregate("w", window_s=10, selectivity=0.1, state_mb=1)
        assert not op.chainable

    def test_union_not_chainable(self):
        assert not union("u").chainable


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("", OperatorKind.MAP)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.FILTER, selectivity=-0.1)

    def test_zero_cost_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.MAP, cost=0.0)

    def test_zero_event_bytes_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.MAP, event_bytes=0.0)

    def test_negative_state_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.JOIN, state_mb=-1.0)

    def test_source_without_site_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.SOURCE)

    def test_non_source_with_site_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.MAP, pinned_site="a")

    def test_stateful_source_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec(
                "x", OperatorKind.SOURCE, pinned_site="a", stateful=True
            )

    def test_negative_window_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("x", OperatorKind.WINDOW_AGGREGATE, window_s=-1)


class TestHelpers:
    def test_with_state_mb(self):
        op = window_aggregate("w", window_s=10, selectivity=0.1, state_mb=5)
        resized = op.with_state_mb(512.0)
        assert resized.state_mb == 512.0
        assert resized.name == op.name

    def test_top_k_selectivity_small(self):
        op = top_k("t", k=10, window_s=30, state_mb=8)
        assert 0 < op.selectivity <= 0.1

    def test_is_source_is_sink(self):
        assert source("s", "x").is_source
        assert sink("k").is_sink
        assert not filter_("f", selectivity=1.0).is_source

    def test_specs_are_frozen(self):
        op = map_("m")
        with pytest.raises(Exception):
            op.cost = 2.0  # type: ignore[misc]

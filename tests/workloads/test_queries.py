"""Tests for repro.workloads.queries - the Table 3 benchmark queries."""

import pytest

from repro.engine.logical import can_replace_preserving_state
from repro.engine.operators import OperatorKind
from repro.engine.physical import PhysicalPlan
from repro.workloads.queries import (
    all_queries,
    events_of_interest,
    topk_topics,
    ysb_advertising,
)


@pytest.fixture
def queries(testbed, rngs):
    return {q.name: q for q in all_queries(testbed, rngs.stream("query"))}


class TestInventory:
    def test_three_queries(self, queries):
        assert set(queries) == {
            "ysb-advertising", "topk-topics", "events-of-interest",
        }

    def test_table3_state_classes(self, queries):
        assert queries["ysb-advertising"].table3.state == "<10 MB"
        assert queries["topk-topics"].table3.state == "~100 MB"
        assert queries["events-of-interest"].table3.state == "0 MB"

    def test_statefulness(self, queries):
        assert queries["ysb-advertising"].stateful
        assert queries["topk-topics"].stateful
        assert not queries["events-of-interest"].stateful

    def test_every_query_has_eight_edge_sources(self, queries):
        for name in ("ysb-advertising", "topk-topics", "events-of-interest"):
            query = queries[name]
            edge_sources = [
                s for s in query.primary.sources()
                if s.pinned_site and s.pinned_site.startswith("edge-")
            ]
            assert len(edge_sources) == 8


class TestYsb:
    def test_operator_inventory(self, queries):
        """Table 3: filter, map, window, join."""
        kinds = {op.kind for op in queries["ysb-advertising"].primary}
        assert OperatorKind.FILTER in kinds
        assert OperatorKind.MAP in kinds
        assert OperatorKind.JOIN in kinds
        assert OperatorKind.WINDOW_AGGREGATE in kinds

    def test_total_state_under_10mb(self, queries):
        total = sum(
            op.state_mb
            for op in queries["ysb-advertising"].primary.stateful_operators()
        )
        assert total < 10.0

    def test_ten_second_windows(self, queries):
        windows = [
            op.window_s
            for op in queries["ysb-advertising"].primary
            if op.window_s > 0
        ]
        assert windows and all(w == 10.0 for w in windows)

    def test_single_variant(self, queries):
        assert len(queries["ysb-advertising"].variants) == 1


class TestTopK:
    def test_variants_enumerated(self, queries):
        assert len(queries["topk-topics"].variants) >= 3

    def test_variants_semantically_equivalent(self, queries):
        """Every grouping variant must produce the same sink rate."""
        query = queries["topk-topics"]
        rates = {
            name: query.workload.generation_eps(name, 0.0)
            for name in query.workload.source_names
        }
        sink_rates = [
            variant.propagate_rates(rates)["sink"]
            for variant in query.variants
        ]
        # Normalization is exact when all branches are grouped with equal
        # partial selectivity (direct/continental/global); mixed groupings
        # with Zipf-skewed rates are approximate (documented in
        # aggregation_grouping_plans).
        for rate in sink_rates[1:]:
            assert rate == pytest.approx(sink_rates[0], rel=0.35)

    def test_variants_are_state_safe_switches(self, queries):
        query = queries["topk-topics"]
        for variant in query.variants[1:]:
            assert can_replace_preserving_state(query.primary, variant)

    def test_state_around_100mb(self, queries):
        total = sum(
            op.state_mb
            for op in queries["topk-topics"].primary.stateful_operators()
        )
        assert 50.0 <= total <= 150.0

    def test_thirty_second_windows(self, queries):
        windows = {
            op.window_s
            for op in queries["topk-topics"].primary
            if op.window_s > 0
        }
        assert windows == {30.0}

    def test_controlled_state_override(self, testbed, rngs):
        query = topk_topics(testbed, rngs.stream("q"), state_mb=512.0)
        win = query.primary.operators["win-country"]
        assert win.state_mb == 512.0


class TestEventsOfInterest:
    def test_fully_stateless(self, queries):
        assert queries["events-of-interest"].primary.stateful_operators() == []

    def test_operator_inventory(self, queries):
        kinds = {op.kind for op in queries["events-of-interest"].primary}
        assert OperatorKind.FILTER in kinds
        assert OperatorKind.UNION in kinds
        assert OperatorKind.PROJECT in kinds

    def test_all_variants_interchangeable(self, queries):
        query = queries["events-of-interest"]
        for variant in query.variants:
            assert can_replace_preserving_state(
                query.primary, variant, allow_window_boundary=False
            )


class TestPhysicalMapping:
    def test_source_chains_absorb_filters(self, queries):
        """Filter pushdown via chaining: edge source stages carry the
        filters, so raw streams never cross the WAN."""
        for query in queries.values():
            physical = PhysicalPlan(query.primary)
            for stage in physical.source_stages():
                if stage.pinned_site and stage.pinned_site.startswith("edge-"):
                    assert stage.selectivity < 1.0
                    assert len(stage.operators) >= 2

    def test_stage_count_reasonable(self, queries):
        for query in queries.values():
            physical = PhysicalPlan(query.primary)
            # 8+ sources, >= 1 processing stage, 1 sink.
            assert 10 <= len(physical.stages) <= 20

"""Tests for repro.workloads - base, YSB and Twitter models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.schedule import Schedule
from repro.workloads.base import ShapedWorkload
from repro.workloads.twitter import TwitterSpec, TwitterWorkload
from repro.workloads.ysb import YsbSpec, YsbWorkload


class TestShapedWorkload:
    def test_base_rates(self):
        workload = ShapedWorkload({"a": 100.0, "b": 200.0})
        assert workload.generation_eps("a", 0.0) == 100.0
        assert workload.total_base_eps() == 300.0

    def test_factor_schedule_applies(self):
        workload = ShapedWorkload({"a": 100.0})
        workload.set_factor_schedule(Schedule([(0.0, 1.0), (300.0, 2.0)]))
        assert workload.generation_eps("a", 100.0) == 100.0
        assert workload.generation_eps("a", 400.0) == 200.0

    def test_unknown_source_is_zero(self):
        assert ShapedWorkload({"a": 1.0}).generation_eps("zzz", 0.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ShapedWorkload({})

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ShapedWorkload({"a": -1.0})

    def test_source_names_sorted(self):
        workload = ShapedWorkload({"z": 1.0, "a": 1.0})
        assert workload.source_names == ["a", "z"]


class TestYsb:
    def make(self):
        return YsbWorkload(
            ["ads@e1", "ads@e2"], "campaigns@dc", YsbSpec(rate_eps=10_000.0)
        )

    def test_uniform_ad_rates(self):
        """Section 8.3: YSB data distributed evenly across edges."""
        workload = self.make()
        assert workload.generation_eps("ads@e1", 0.0) == 10_000.0
        assert workload.generation_eps("ads@e2", 0.0) == 10_000.0

    def test_campaign_stream_is_a_trickle(self):
        workload = self.make()
        assert workload.generation_eps("campaigns@dc", 0.0) < 1_000.0

    def test_factor_applies_to_ads_only(self):
        """Section 8.4's rate steps double the ad workload, not the
        campaign-metadata control stream."""
        workload = self.make()
        workload.set_factor_schedule(Schedule.constant(2.0))
        assert workload.generation_eps("ads@e1", 0.0) == 20_000.0
        assert workload.generation_eps("campaigns@dc", 0.0) == (
            YsbSpec().campaign_update_eps
        )


class TestTwitter:
    def make(self, seed=0, **spec_kwargs):
        sources = [f"tweets@e{i}" for i in range(8)]
        return TwitterWorkload(
            sources, np.random.default_rng(seed), TwitterSpec(**spec_kwargs)
        )

    def test_total_rate_matches_mean(self):
        workload = self.make(mean_rate_eps=10_000.0)
        assert workload.total_base_eps() == pytest.approx(80_000.0)

    def test_spatial_skew(self):
        """Twitter workload is spatially skewed (Section 2.2)."""
        weights = self.make().spatial_weights()
        assert max(weights.values()) > 1.3 * min(weights.values())

    def test_weights_sum_to_one(self):
        weights = self.make().spatial_weights()
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_diurnal_cycle_two_to_one(self):
        """Day hours carry ~2x the night workload (Section 2.2)."""
        workload = self.make(day_length_s=1000.0)
        source = workload.source_names[0]
        rates = [
            workload.generation_eps(source, t) for t in range(0, 1000, 10)
        ]
        assert max(rates) / min(rates) == pytest.approx(2.0, rel=0.05)

    def test_phases_roll_around_globe(self):
        workload = self.make(day_length_s=1000.0)
        t_peak = {}
        for source in workload.source_names[:3]:
            rates = {
                t: workload.shape(source, t) for t in range(0, 1000, 10)
            }
            t_peak[source] = max(rates, key=rates.get)
        assert len(set(t_peak.values())) > 1

    def test_reproducible(self):
        a = self.make(seed=3).spatial_weights()
        b = self.make(seed=3).spatial_weights()
        assert a == b

    def test_different_seed_different_geography(self):
        a = self.make(seed=1).spatial_weights()
        b = self.make(seed=2).spatial_weights()
        assert a != b

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            TwitterSpec(mean_rate_eps=0.0)
        with pytest.raises(ConfigurationError):
            TwitterSpec(day_night_ratio=0.5)

"""Tests for repro.experiments.multiquery - shared-WAN co-scheduling."""

import numpy as np
import pytest

from repro.baselines.variants import no_adapt, wasp
from repro.errors import ConfigurationError
from repro.experiments.multiquery import MultiQueryRun, QuerySubmission
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import events_of_interest, topk_topics, ysb_advertising
from repro.workloads.twitter import TwitterSpec
from repro.workloads.ysb import YsbSpec


def build_multi(variants=(no_adapt(), no_adapt()), seed=42, starts=(0.0, 0.0),
                ysb_rate=10_000.0, twitter_rate=10_000.0):
    rngs = RngRegistry(seed)
    topo = paper_testbed(rngs.stream("topology"))
    submissions = [
        QuerySubmission(
            ysb_advertising(topo, YsbSpec(rate_eps=ysb_rate)),
            variants[0],
            start_s=starts[0],
        ),
        QuerySubmission(
            topk_topics(
                topo, rngs.stream("query"),
                TwitterSpec(mean_rate_eps=twitter_rate),
            ),
            variants[1],
            start_s=starts[1],
        ),
    ]
    return MultiQueryRun(topo, submissions, rngs=rngs)


def mean_delay(recorder, lo, hi):
    series = recorder.delay_series()[lo:hi]
    series = series[~np.isnan(series)]
    return float(np.mean(series)) if len(series) else float("nan")


class TestCoScheduling:
    def test_both_queries_deploy_and_flow(self):
        multi = build_multi()
        multi.run(60)
        for run in multi.runs:
            assert run.recorder.total_processed() > 0

    def test_slots_shared_on_one_topology(self):
        multi = build_multi()
        used = multi.topology.total_used_slots()
        individual = sum(
            run.runtime.plan.total_parallelism() for run in multi.runs
        )
        assert used == individual

    def test_deferred_submission(self):
        multi = build_multi(starts=(0.0, 30.0))
        multi.run(20)
        assert len(multi.runs) == 1
        multi.run(40)
        assert len(multi.runs) == 2

    def test_empty_submissions_rejected(self):
        rngs = RngRegistry(0)
        topo = paper_testbed(rngs.stream("topology"))
        with pytest.raises(ConfigurationError):
            MultiQueryRun(topo, [], rngs=rngs)

    def test_run_named(self):
        multi = build_multi()
        assert multi.run_named("ysb-advertising").query.name == (
            "ysb-advertising"
        )
        with pytest.raises(ConfigurationError):
            multi.run_named("nope")


class TestContention:
    def test_second_query_costs_the_first(self):
        """Shared links: adding a heavy co-tenant increases the first
        query's delay relative to running alone."""
        alone = build_multi(starts=(0.0, 10_000.0), twitter_rate=20_000.0)
        alone.run(240)
        together = build_multi(starts=(0.0, 0.0), twitter_rate=20_000.0)
        together.run(240)
        ysb_alone = mean_delay(
            alone.run_named("ysb-advertising").recorder, 120, 240
        )
        ysb_together = mean_delay(
            together.run_named("ysb-advertising").recorder, 120, 240
        )
        assert ysb_together >= ysb_alone * 0.99  # never cheaper

    def test_adaptive_tenants_resolve_contention(self):
        """With WASP attached, the victims of contention re-optimize: their
        long-run delay stays near baseline even with a heavy co-tenant."""
        multi = build_multi(
            variants=(wasp(), wasp()), twitter_rate=20_000.0
        )
        multi.run(600)
        for run in multi.runs:
            assert run.recorder.processed_fraction() == 1.0
            late = mean_delay(run.recorder, 500, 600)
            assert late < 15.0

    def test_rotation_prevents_permanent_starvation(self):
        """Budget order rotates, so neither query systematically loses."""
        multi = build_multi(twitter_rate=20_000.0)
        multi.run(120)
        ratios = [
            run.recorder.processing_ratio_series()[-1]
            for run in multi.runs
        ]
        assert all(r > 0.3 for r in ratios)

"""Tests for repro.experiments.harness - wiring and dynamics."""

import pytest

from repro.baselines.variants import degrade, no_adapt, wasp
from repro.config import WaspConfig
from repro.errors import ConfigurationError
from repro.experiments.harness import (
    DynamicsSpec,
    ExperimentRun,
    FailureEvent,
)
from repro.sim.rng import RngRegistry
from repro.sim.schedule import Schedule
from repro.workloads.queries import ysb_advertising


@pytest.fixture
def run(testbed, rngs):
    query = ysb_advertising(testbed)
    return ExperimentRun(testbed, query, no_adapt(), rngs=rngs)


class TestWiring:
    def test_initial_deployment_complete(self, run):
        assert run.runtime.plan.deployed()
        assert run.scheduler.initial_slots is not None

    def test_stateful_stages_have_state(self, run):
        assert run.state_store.total_mb("join{ads+campaigns}") > 0

    def test_no_adapt_has_no_manager(self, run):
        assert run.manager is None

    def test_wasp_variant_gets_manager(self, testbed, rngs):
        query = ysb_advertising(testbed)
        run = ExperimentRun(testbed, query, wasp(), rngs=rngs)
        assert run.manager is not None

    def test_degrade_sets_engine_slo(self, testbed, rngs):
        query = ysb_advertising(testbed)
        run = ExperimentRun(testbed, query, degrade(), rngs=rngs)
        assert run.runtime.degrade_slo_s == 10.0

    def test_step_records_sample(self, run):
        sample = run.step()
        assert sample.t_s == 1.0
        assert sample.offered > 0
        assert len(run.recorder.samples) == 1

    def test_run_duration(self, run):
        run.run(30)
        assert run.clock.now_s == pytest.approx(30.0)
        assert len(run.recorder.samples) == 30


class TestDynamics:
    def test_workload_schedule_applies(self, run):
        run.set_dynamics(
            DynamicsSpec(workload_schedule=Schedule([(0.0, 1.0), (5.0, 2.0)]))
        )
        run.run(4)
        offered_before = run.recorder.samples[-1].offered
        run.run(10)
        offered_after = run.recorder.samples[-1].offered
        assert offered_after == pytest.approx(2 * offered_before, rel=0.01)

    def test_bandwidth_schedule_applies(self, run):
        link = run.topology.links()[0]
        base = link.bandwidth_mbps
        run.set_dynamics(
            DynamicsSpec(bandwidth_schedule=Schedule([(0.0, 1.0), (2.0, 0.5)]))
        )
        run.run(5)
        assert run.topology.bandwidth_mbps(link.src, link.dst) == (
            pytest.approx(base * 0.5)
        )

    def test_per_link_schedule(self, run):
        link = run.topology.links()[0]
        run.set_dynamics(
            DynamicsSpec(
                link_bandwidth_schedules={
                    (link.src, link.dst): Schedule([(0.0, 0.25)])
                }
            )
        )
        run.run(2)
        assert run.topology.bandwidth_factor(link.src, link.dst) == 0.25

    def test_failure_window(self, run):
        run.set_dynamics(
            DynamicsSpec(failures=[FailureEvent(t_s=3.0, duration_s=4.0)])
        )
        run.run(4)
        assert all(s.failed for s in run.topology)
        run.run(5)  # to t = 9 > 7
        assert not any(s.failed for s in run.topology)

    def test_partial_failure(self, run):
        victim = run.topology.site_names[0]
        run.set_dynamics(
            DynamicsSpec(
                failures=[
                    FailureEvent(t_s=1.0, duration_s=2.0, sites=(victim,))
                ]
            )
        )
        run.run(2)
        assert run.topology.site(victim).failed
        assert sum(1 for s in run.topology if s.failed) == 1

    def test_invalid_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(t_s=-1.0, duration_s=5.0)


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        from repro.network.traces import paper_testbed

        def make_run():
            rngs = RngRegistry(99)
            topo = paper_testbed(rngs.stream("topology"))
            query = ysb_advertising(topo)
            run = ExperimentRun(topo, query, wasp(), rngs=rngs)
            run.run(120, DynamicsSpec(
                workload_schedule=Schedule([(0.0, 1.0), (50.0, 2.0)])
            ))
            return run

        import numpy as np

        a, b = make_run(), make_run()
        assert np.allclose(
            a.recorder.delay_series(),
            b.recorder.delay_series(),
            equal_nan=True,
        )
        assert len(a.manager.history) == len(b.manager.history)

"""Tests for repro.experiments.figures - the text renderers."""

import numpy as np
import pytest

from repro.baselines.variants import no_adapt, wasp
from repro.experiments.figures import (
    OverheadBreakdown,
    fig2_report,
    fig7_report,
    fig8_report,
    fig9_report,
    fig10_report,
    fig11_report,
    fig12_report,
    fig13_report,
    fig14_report,
    measure_overhead,
    segment_mean,
    table2_report,
    table3_report,
)
from repro.experiments.harness import ExperimentRun
from repro.network.bandwidth import oregon_ohio_trace
from repro.sim.rng import RngRegistry
from repro.workloads.queries import all_queries, ysb_advertising


@pytest.fixture(scope="module")
def short_runs():
    from repro.network.traces import paper_testbed

    runs = {}
    for variant in (no_adapt(), wasp()):
        rngs = RngRegistry(5)
        topo = paper_testbed(rngs.stream("topology"))
        query = ysb_advertising(topo)
        run = ExperimentRun(topo, query, variant, rngs=rngs)
        run.run(60)
        runs[variant.name] = run
    return runs


class TestSegmentMean:
    def test_basic(self):
        assert segment_mean(np.array([1.0, 2.0, 3.0, 4.0]), 1, 3) == 2.5

    def test_ignores_nan(self):
        series = np.array([1.0, np.nan, 3.0])
        assert segment_mean(series, 0, 3) == 2.0

    def test_empty_is_nan(self):
        assert np.isnan(segment_mean(np.array([np.nan]), 0, 1))


class TestStaticReports:
    def test_fig2(self):
        text = fig2_report(oregon_ohio_trace(np.random.default_rng(0)))
        assert "Oregon -> Ohio" in text
        assert "deviation" in text

    def test_fig7(self, testbed):
        text = fig7_report(testbed)
        assert "edge bandwidth" in text and "DC latency" in text

    def test_table2(self):
        assert "Task Re-Assignment" in table2_report()

    def test_table3(self, testbed, rngs):
        text = table3_report(all_queries(testbed, rngs.stream("query")))
        assert "Top-K Topics" in text
        assert "Twitter trace (scaled)" in text


class TestRunReports:
    def test_fig8(self, short_runs):
        text = fig8_report(short_runs, "ysb-advertising")
        assert "No Adapt" in text and "WASP" in text

    def test_fig9(self, short_runs):
        text = fig9_report(short_runs, "ysb-advertising")
        assert "processing ratio" in text

    def test_fig10(self, short_runs):
        text = fig10_report(short_runs)
        assert "p93" in text

    def test_fig11(self, short_runs):
        text = fig11_report(short_runs)
        assert "failure" in text

    def test_fig12(self, short_runs):
        text = fig12_report(short_runs)
        assert "processed %" in text
        assert "100.0%" in text


class TestOverhead:
    def test_measure_overhead_splits_phases(self, short_runs):
        from repro.core.controller import AdaptationRecord
        from repro.core.actions import ActionKind

        run = short_runs["WASP"]
        record = AdaptationRecord(
            t_s=30.0, kind=ActionKind.REASSIGN, stage="x", reason="",
            transition_s=5.0,
        )
        breakdown = measure_overhead(
            run, record, destination="dc", baseline_lo=5, baseline_hi=25
        )
        assert breakdown.transition_s == 5.0
        assert breakdown.stabilize_s is not None

    def test_fig13_report(self):
        rows = [
            OverheadBreakdown("WASP", "edge-1", 40.0, 10.0, 20.0, 0.0),
            OverheadBreakdown("WASP/none", "edge-2", 2.0, 1.0, 0.7, 60.0),
        ]
        text = fig13_report(rows)
        assert "WASP/none" in text
        assert "60MB" in text

    def test_fig14_report(self):
        rows = [
            ("Default", 512.0, OverheadBreakdown("WASP", "", 350.0, None,
                                                 1.0, 0.0)),
            ("Partitioned", 512.0, OverheadBreakdown("WASP", "", 110.0, 5.0,
                                                     90.0, 0.0)),
        ]
        text = fig14_report(rows)
        assert "Partitioned" in text
        assert "-" in text  # unstabilized run renders a dash

    def test_total(self):
        breakdown = OverheadBreakdown("x", "", 10.0, 5.0, 1.0, 0.0)
        assert breakdown.total_s == 15.0
        assert OverheadBreakdown("x", "", 10.0, None, 1.0, 0.0).total_s == 10.0

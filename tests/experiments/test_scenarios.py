"""Tests for repro.experiments.scenarios - the Section-8 scenario builders."""

import pytest

from repro.baselines.variants import wasp
from repro.core.migration import MigrationStrategy
from repro.errors import WaspError
from repro.experiments.scenarios import (
    FIG13_STATE_MB,
    FIG14_STATE_SIZES_MB,
    MIGRATION_STAGE,
    MIGRATION_TRIGGER_AT_S,
    bottleneck_dynamics,
    build_migration_run,
    fig8_scenario,
    fig10_scenario,
    fig11_scenario,
    force_partitioned_adaptation,
    force_reassignment,
    live_dynamics,
    make_query_by_name,
    migration_variants,
    technique_dynamics,
)
from repro.sim.rng import RngRegistry


class TestDynamicsTimelines:
    def test_section84_timeline(self):
        dyn = bottleneck_dynamics()
        workload = dyn.workload_schedule
        bandwidth = dyn.bandwidth_schedule
        assert workload.factor(100) == 1.0
        assert workload.factor(350) == 2.0
        assert workload.factor(650) == 1.0
        assert bandwidth.factor(950) == 0.5
        assert bandwidth.factor(1250) == 1.0

    def test_section85_vectors(self):
        dyn = technique_dynamics()
        assert [dyn.workload_schedule.factor(t) for t in
                (0, 350, 650, 950, 1250)] == [1.0, 2.0, 2.0, 1.0, 1.0]
        assert [dyn.bandwidth_schedule.factor(t) for t in
                (0, 350, 650, 950, 1250)] == [1.0, 1.0, 0.5, 0.5, 1.0]

    def test_section86_bounds_and_failure(self):
        dyn = live_dynamics(RngRegistry(0))
        for point in dyn.bandwidth_schedule.breakpoints():
            assert 0.51 <= point.factor <= 2.36
        for point in dyn.workload_schedule.breakpoints():
            assert 0.8 <= point.factor <= 2.4
        assert dyn.failures[0].t_s == 540.0
        assert dyn.failures[0].duration_s == 60.0


class TestScenarioShapes:
    def test_fig8_variants(self):
        scenario = fig8_scenario("topk-topics")
        assert [v.name for v in scenario.variants] == [
            "No Adapt", "Degrade", "WASP",
        ]
        assert scenario.duration_s == 1500.0

    def test_fig10_variants(self):
        scenario = fig10_scenario()
        assert [v.name for v in scenario.variants] == [
            "No Adapt", "Re-assign", "Scale", "Re-plan",
        ]

    def test_fig11_variants(self):
        scenario = fig11_scenario()
        assert scenario.duration_s == 1800.0

    def test_unknown_query_rejected(self):
        with pytest.raises(WaspError):
            make_query_by_name("nope")

    def test_migration_variants_cover_strategies(self):
        strategies = {v.migration_strategy for v in migration_variants()}
        assert strategies == set(MigrationStrategy)

    def test_fig14_state_sizes(self):
        assert FIG14_STATE_SIZES_MB == (0.0, 32.0, 64.0, 128.0, 256.0, 512.0)
        assert FIG13_STATE_MB == 60.0


class TestControlledMigration:
    def test_forced_reassignment_moves_stage(self):
        run = build_migration_run(wasp(), 32.0)
        before = set(run.runtime.plan.stage(MIGRATION_STAGE).placement())
        run.run(MIGRATION_TRIGGER_AT_S)
        destination = force_reassignment(run)
        after = set(run.runtime.plan.stage(MIGRATION_STAGE).placement())
        assert after == {destination}
        assert after != before

    def test_forced_reassignment_needs_manager(self, testbed, rngs):
        from repro.baselines.variants import no_adapt
        from repro.experiments.harness import ExperimentRun
        from repro.workloads.queries import topk_topics

        query = topk_topics(testbed, rngs.stream("query"))
        run = ExperimentRun(testbed, query, no_adapt(), rngs=rngs)
        with pytest.raises(WaspError):
            force_reassignment(run)

    def test_controlled_state_size_pinned(self):
        run = build_migration_run(wasp(), 256.0)
        assert run.state_store.total_mb(MIGRATION_STAGE) == pytest.approx(
            256.0
        )
        run.run(100)
        assert run.state_store.total_mb(MIGRATION_STAGE) == pytest.approx(
            256.0
        )

    def test_stage_hosted_at_edge(self):
        """Section 8.7 studies migration over public-Internet links."""
        run = build_migration_run(wasp(), 64.0)
        sites = run.runtime.plan.stage(MIGRATION_STAGE).sites()
        assert all(run.topology.site(s).is_edge for s in sites)

    def test_partitioned_scales_out_for_large_state(self):
        run = build_migration_run(wasp(), 512.0)
        run.run(MIGRATION_TRIGGER_AT_S)
        force_partitioned_adaptation(run, t_threshold_s=30.0)
        assert run.runtime.plan.stage(MIGRATION_STAGE).parallelism > 1

    def test_partitioned_keeps_small_state_whole(self):
        run = build_migration_run(wasp(), 16.0)
        run.run(MIGRATION_TRIGGER_AT_S)
        force_partitioned_adaptation(run, t_threshold_s=30.0)
        record = run.manager.history[-1]
        assert run.runtime.plan.stage(MIGRATION_STAGE).parallelism == 1
        assert record.transition_s < 30.0 + run.config.reconfig_base_overhead_s

    def test_strategy_ordering_on_transition(self):
        """WASP <= Random and WASP <= Distant (Section 8.7.1)."""
        transitions = {}
        for variant in migration_variants():
            run = build_migration_run(variant, FIG13_STATE_MB)
            run.run(MIGRATION_TRIGGER_AT_S)
            force_reassignment(run)
            transitions[variant.name] = run.manager.history[-1].transition_s
        assert transitions["WASP/none"] <= transitions["WASP"]
        assert transitions["WASP"] <= transitions["WASP/random"]
        assert transitions["WASP"] <= transitions["WASP/distant"]
        assert transitions["WASP/random"] <= transitions["WASP/distant"]

"""Tests for run_variants - isolated, comparable multi-variant sweeps."""

import numpy as np
import pytest

from repro.baselines.variants import no_adapt, wasp
from repro.experiments.harness import DynamicsSpec, run_variants
from repro.network.traces import paper_testbed
from repro.sim.schedule import Schedule
from repro.workloads.queries import ysb_advertising


def make_topology(rngs):
    return paper_testbed(rngs.stream("topology"))


def make_query(topology, rngs):
    return ysb_advertising(topology)


def make_dynamics(rngs):
    return DynamicsSpec(
        workload_schedule=Schedule([(0.0, 1.0), (30.0, 2.0)])
    )


class TestIsolation:
    def test_each_variant_gets_its_own_world(self):
        """Adaptations in one run must not leak into another: every variant
        re-creates the topology from the same seed."""
        results = run_variants(
            make_topology, make_query, [no_adapt(), wasp()], 90,
            make_dynamics, seed=7,
        )
        assert results["No Adapt"].topology is not results["WASP"].topology

    def test_identical_worlds_from_one_seed(self):
        results = run_variants(
            make_topology, make_query, [no_adapt(), wasp()], 30,
            make_dynamics, seed=7,
        )
        links_a = results["No Adapt"].topology.links()
        links_b = results["WASP"].topology.links()
        # Base capacities identical; only live factors may differ through
        # adaptation side effects (none here).
        assert [
            (l.src, l.dst, l.latency_ms) for l in links_a
        ] == [(l.src, l.dst, l.latency_ms) for l in links_b]

    def test_results_keyed_by_variant_name(self):
        results = run_variants(
            make_topology, make_query, [no_adapt()], 20, make_dynamics,
            seed=7,
        )
        assert set(results) == {"No Adapt"}

    def test_recorders_cover_full_duration(self):
        results = run_variants(
            make_topology, make_query, [no_adapt()], 25, make_dynamics,
            seed=7,
        )
        assert len(results["No Adapt"].recorder.samples) == 25

    def test_same_offered_load_across_variants(self):
        """Comparability: every variant faces the exact same workload."""
        results = run_variants(
            make_topology, make_query, [no_adapt(), wasp()], 60,
            make_dynamics, seed=7,
        )
        offered = {
            name: run.recorder.total_offered()
            for name, run in results.items()
        }
        values = list(offered.values())
        assert values[0] == pytest.approx(values[1])

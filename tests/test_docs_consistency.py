"""Documentation consistency: the docs reference things that exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
    )
    def test_doc_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists()
        assert len(path.read_text()) > 2_000

    def test_design_confirms_the_paper(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Paper verified" in text
        assert "Middleware" in text


class TestReferencedFilesExist:
    def test_design_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"`(benchmarks/[\w.]+\.py)`", text):
            assert (ROOT / match).exists(), match

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"`(\w+\.py)`", text):
            if (ROOT / "examples" / match).exists():
                continue
            # Not every backticked .py is an example; only check the
            # examples table rows.
        for row in re.findall(r"\| `(\w+\.py)` \|", text):
            assert (ROOT / "examples" / row).exists(), row

    def test_readme_bench_table_matches_files(self):
        text = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(test_fig\d+\w*)`", text):
            matches = list((ROOT / "benchmarks").glob(f"{name}*.py"))
            assert matches, name

    def test_design_module_map_matches_packages(self):
        text = (ROOT / "DESIGN.md").read_text()
        for module in re.findall(r"^\s{4}(\w+\.py)\s", text, re.MULTILINE):
            hits = list((ROOT / "src" / "repro").rglob(module))
            assert hits, module

    def test_every_benchmark_is_indexed(self):
        """Each bench file appears in DESIGN.md's experiment index."""
        design = (ROOT / "DESIGN.md").read_text()
        for path in (ROOT / "benchmarks").glob("test_*.py"):
            assert path.name in design, path.name


class TestPublicSurfaceDocumented:
    def test_all_public_modules_have_docstrings(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

"""Tests for repro.sim.schedule."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.schedule import Schedule


class TestPiecewise:
    def test_initial_before_first_breakpoint(self):
        schedule = Schedule([(10.0, 2.0)], initial=1.0)
        assert schedule.factor(5.0) == 1.0

    def test_factor_at_breakpoint(self):
        schedule = Schedule([(10.0, 2.0)])
        assert schedule.factor(10.0) == 2.0

    def test_factor_holds_until_next(self):
        schedule = Schedule([(10.0, 2.0), (20.0, 0.5)])
        assert schedule.factor(15.0) == 2.0
        assert schedule.factor(25.0) == 0.5

    def test_constant(self):
        schedule = Schedule.constant(3.0)
        assert schedule.factor(0.0) == 3.0
        assert schedule.factor(1e9) == 3.0

    def test_section_84_timeline(self):
        """Rate 1x -> 2x at 300 -> 1x at 600 (Section 8.4)."""
        schedule = Schedule([(0.0, 1.0), (300.0, 2.0), (600.0, 1.0)])
        assert schedule.factor(299.0) == 1.0
        assert schedule.factor(300.0) == 2.0
        assert schedule.factor(599.0) == 2.0
        assert schedule.factor(600.0) == 1.0

    def test_duplicate_times_rejected(self):
        with pytest.raises(SimulationError):
            Schedule([(1.0, 2.0), (1.0, 3.0)])

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Schedule([(-1.0, 2.0)])

    def test_negative_factor_rejected(self):
        with pytest.raises(SimulationError):
            Schedule([(1.0, -2.0)])

    def test_breakpoints_sorted(self):
        schedule = Schedule([(20.0, 3.0), (10.0, 2.0)])
        points = schedule.breakpoints()
        assert [p.t_s for p in points] == [10.0, 20.0]


class TestSteps:
    def test_section_85_vector(self):
        """Workload x{1,2,2,1,1} in 300 s intervals (Section 8.5)."""
        schedule = Schedule.steps(300.0, [1.0, 2.0, 2.0, 1.0, 1.0])
        assert schedule.factor(0.0) == 1.0
        assert schedule.factor(450.0) == 2.0
        assert schedule.factor(750.0) == 2.0
        assert schedule.factor(1000.0) == 1.0

    def test_zero_step_rejected(self):
        with pytest.raises(SimulationError):
            Schedule.steps(0.0, [1.0])


class TestRandomWalk:
    def test_bounded(self):
        rng = np.random.default_rng(0)
        schedule = Schedule.random_walk(
            rng, duration_s=3600, interval_s=60, low=0.51, high=2.36
        )
        samples = [schedule.factor(t) for t in range(0, 3600, 30)]
        assert min(samples) >= 0.51
        assert max(samples) <= 2.36

    def test_actually_varies(self):
        rng = np.random.default_rng(0)
        schedule = Schedule.random_walk(
            rng, duration_s=3600, interval_s=60, low=0.5, high=2.0
        )
        samples = {schedule.factor(t) for t in range(0, 3600, 60)}
        assert len(samples) > 10

    def test_reproducible(self):
        a = Schedule.random_walk(
            np.random.default_rng(1), duration_s=600, interval_s=60,
            low=0.8, high=2.4,
        )
        b = Schedule.random_walk(
            np.random.default_rng(1), duration_s=600, interval_s=60,
            low=0.8, high=2.4,
        )
        assert [p.factor for p in a.breakpoints()] == [
            p.factor for p in b.breakpoints()
        ]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(SimulationError):
            Schedule.random_walk(
                np.random.default_rng(0), duration_s=60, interval_s=10,
                low=2.0, high=1.0,
            )

    def test_zero_duration_rejected(self):
        with pytest.raises(SimulationError):
            Schedule.random_walk(
                np.random.default_rng(0), duration_s=0, interval_s=10,
                low=0.5, high=1.0,
            )

    @given(
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=1.0, max_value=5.0),
        st.integers(min_value=0, max_value=1000),
    )
    def test_bounds_hold_for_any_range(self, low, high, seed):
        rng = np.random.default_rng(seed)
        schedule = Schedule.random_walk(
            rng, duration_s=600, interval_s=60, low=low, high=high
        )
        for point in schedule.breakpoints():
            assert low <= point.factor <= high

"""Tests for repro.sim.rng - seeded, named RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, _derive_seed


class TestDerivation:
    def test_same_inputs_same_seed(self):
        assert _derive_seed(1, "a") == _derive_seed(1, "a")

    def test_different_names_different_seeds(self):
        assert _derive_seed(1, "a") != _derive_seed(1, "b")

    def test_different_masters_different_seeds(self):
        assert _derive_seed(1, "a") != _derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=40))
    def test_seed_in_uint64_range(self, master, name):
        seed = _derive_seed(master, name)
        assert 0 <= seed < 2**64


class TestRegistry:
    def test_stream_is_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("workload").random(5)
        b = RngRegistry(7).stream("workload").random(5)
        assert np.allclose(a, b)

    def test_streams_independent_by_name(self):
        registry = RngRegistry(7)
        a = registry.stream("a").random(5)
        b = registry.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_creating_new_stream_does_not_disturb_existing(self):
        """The key reproducibility property: adding a consumer must not
        change draws seen by existing consumers."""
        reference = RngRegistry(7)
        ref_draws = reference.stream("target").random(10)

        registry = RngRegistry(7)
        registry.stream("other-1").random(100)
        registry.stream("other-2").random(3)
        draws = registry.stream("target").random(10)
        assert np.allclose(ref_draws, draws)

    def test_fork_gives_independent_namespace(self):
        registry = RngRegistry(7)
        child = registry.fork("child")
        a = registry.stream("x").random(3)
        b = child.stream("x").random(3)
        assert not np.allclose(a, b)

    def test_fork_reproducible(self):
        a = RngRegistry(7).fork("c").stream("x").random(3)
        b = RngRegistry(7).fork("c").stream("x").random(3)
        assert np.allclose(a, b)

    def test_names_sorted(self):
        registry = RngRegistry(7)
        registry.stream("zeta")
        registry.stream("alpha")
        assert registry.names() == ["alpha", "zeta"]

    def test_master_seed_exposed(self):
        assert RngRegistry(99).master_seed == 99

"""Tests for repro.sim.clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance_one_tick(self):
        clock = SimClock(tick_s=1.0)
        assert clock.advance() == 1.0

    def test_tick_index_counts(self):
        clock = SimClock()
        clock.advance()
        clock.advance()
        assert clock.tick_index == 2

    def test_fractional_tick(self):
        clock = SimClock(tick_s=0.5)
        clock.advance()
        assert clock.now_s == pytest.approx(0.5)

    def test_run_until(self):
        clock = SimClock(tick_s=1.0)
        clock.run_until(10.0)
        assert clock.now_s == pytest.approx(10.0)

    def test_run_until_no_overshoot(self):
        clock = SimClock(tick_s=3.0)
        clock.run_until(7.0)
        assert clock.now_s == pytest.approx(9.0)  # last covering tick

    def test_invalid_tick_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(tick_s=0)


class TestPeriodicCallbacks:
    def test_fires_at_period(self):
        clock = SimClock()
        fired = []
        clock.every(3.0, fired.append)
        clock.run_until(10.0)
        assert fired == [3.0, 6.0, 9.0]

    def test_offset_controls_first_firing(self):
        clock = SimClock()
        fired = []
        clock.every(5.0, fired.append, offset_s=2.0)
        clock.run_until(13.0)
        assert fired == [2.0, 7.0, 12.0]

    def test_multiple_tasks_fire_in_registration_order(self):
        clock = SimClock()
        order = []
        clock.every(1.0, lambda t: order.append("a"), name="a")
        clock.every(1.0, lambda t: order.append("b"), name="b")
        clock.advance()
        assert order == ["a", "b"]

    def test_long_tick_fires_once_per_period(self):
        clock = SimClock(tick_s=10.0)
        fired = []
        clock.every(3.0, fired.append)
        clock.advance()
        assert fired == [10.0, 10.0, 10.0]

    def test_disable_stops_firing(self):
        clock = SimClock()
        fired = []
        clock.every(1.0, fired.append, name="t")
        clock.advance()
        clock.set_enabled("t", False)
        clock.advance()
        assert len(fired) == 1

    def test_reenable_resumes(self):
        clock = SimClock()
        fired = []
        clock.every(1.0, fired.append, name="t")
        clock.set_enabled("t", False)
        clock.advance()
        clock.set_enabled("t", True)
        clock.advance()
        # Catches up on the missed period plus the current one.
        assert len(fired) == 2

    def test_duplicate_name_rejected(self):
        clock = SimClock()
        clock.every(1.0, lambda t: None, name="x")
        with pytest.raises(SimulationError):
            clock.every(2.0, lambda t: None, name="x")

    def test_unknown_name_in_set_enabled(self):
        with pytest.raises(SimulationError):
            SimClock().set_enabled("nope", True)

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().every(0.0, lambda t: None)

    def test_returns_generated_name(self):
        clock = SimClock()
        name = clock.every(1.0, lambda t: None)
        assert name == "periodic-0"

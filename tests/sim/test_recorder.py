"""Tests for repro.sim.recorder."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.recorder import RunRecorder, TickSample


def make_sample(t, delay=1.0, processed=100.0, offered=100.0, dropped=0.0,
                parallelism=4, extra=0):
    return TickSample(
        t_s=t, delay_s=delay, processed=processed, offered=offered,
        dropped=dropped, parallelism=parallelism, extra_slots=extra,
    )


class TestSeries:
    def test_times(self):
        recorder = RunRecorder()
        for t in (1.0, 2.0, 3.0):
            recorder.record_tick(make_sample(t))
        assert list(recorder.times()) == [1.0, 2.0, 3.0]

    def test_delay_series_preserves_nan(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(1.0, delay=float("nan"), processed=0))
        recorder.record_tick(make_sample(2.0, delay=5.0))
        series = recorder.delay_series()
        assert math.isnan(series[0]) and series[1] == 5.0

    def test_parallelism_series(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(1.0, parallelism=3))
        recorder.record_tick(make_sample(2.0, parallelism=5))
        assert list(recorder.parallelism_series()) == [3.0, 5.0]

    def test_extra_slots_series(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(1.0, extra=2))
        assert list(recorder.extra_slots_series()) == [2.0]


class TestProcessingRatio:
    def test_ratio_one_when_keeping_up(self):
        recorder = RunRecorder()
        for t in range(60):
            recorder.record_tick(make_sample(float(t)))
        assert recorder.processing_ratio_series()[-1] == pytest.approx(1.0)

    def test_ratio_below_one_when_constrained(self):
        recorder = RunRecorder()
        for t in range(60):
            recorder.record_tick(make_sample(float(t), processed=80.0))
        assert recorder.processing_ratio_series()[-1] == pytest.approx(0.8)

    def test_ratio_above_one_when_draining(self):
        """Section 8.4: ratio > 1 means queued events are being consumed."""
        recorder = RunRecorder()
        for t in range(60):
            recorder.record_tick(make_sample(float(t), processed=130.0))
        assert recorder.processing_ratio_series()[-1] > 1.0

    def test_ratio_defaults_to_one_without_offered(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(0.0, processed=0.0, offered=0.0))
        assert recorder.processing_ratio_series()[0] == 1.0

    def test_windowing_limits_lookback(self):
        recorder = RunRecorder()
        for t in range(40):
            recorder.record_tick(make_sample(float(t), processed=0.0))
        for t in range(40, 80):
            recorder.record_tick(make_sample(float(t), processed=100.0))
        # With a 30-tick window the early zeros are out of scope by t=79.
        assert recorder.processing_ratio_series(window_ticks=30)[-1] == (
            pytest.approx(1.0)
        )


class TestDistributions:
    def test_mean_delay_weighted_by_events(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(1.0, delay=1.0, processed=300.0))
        recorder.record_tick(make_sample(2.0, delay=4.0, processed=100.0))
        assert recorder.mean_delay() == pytest.approx(1.75)

    def test_percentile_endpoints(self):
        recorder = RunRecorder()
        for t, d in enumerate((1.0, 2.0, 3.0, 4.0)):
            recorder.record_tick(make_sample(float(t), delay=d))
        assert recorder.delay_percentile(0) == 1.0
        assert recorder.delay_percentile(100) == 4.0

    def test_percentile_weighting(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(0.0, delay=1.0, processed=990.0))
        recorder.record_tick(make_sample(1.0, delay=100.0, processed=10.0))
        assert recorder.delay_percentile(95) == 1.0
        assert recorder.delay_percentile(99.9) == 100.0

    def test_empty_distribution_is_nan(self):
        recorder = RunRecorder()
        assert math.isnan(recorder.mean_delay())
        assert math.isnan(recorder.delay_percentile(50))

    def test_cdf_monotone(self):
        recorder = RunRecorder()
        rng = np.random.default_rng(0)
        for t in range(100):
            recorder.record_tick(
                make_sample(float(t), delay=float(rng.uniform(0.1, 30)))
            )
        xs, ys = recorder.delay_cdf()
        assert (np.diff(xs) >= 0).all()
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == pytest.approx(1.0)

    def test_cdf_caps_points(self):
        recorder = RunRecorder()
        for t in range(500):
            recorder.record_tick(make_sample(float(t), delay=float(t)))
        xs, _ = recorder.delay_cdf(points=50)
        assert len(xs) == 50

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1,
                    max_size=60))
    def test_percentile_within_observed_range(self, delays):
        recorder = RunRecorder()
        for t, d in enumerate(delays):
            recorder.record_tick(make_sample(float(t), delay=d))
        p50 = recorder.delay_percentile(50)
        assert min(delays) <= p50 <= max(delays)


class TestQualityAccounting:
    def test_processed_fraction_full_when_no_drops(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(0.0))
        assert recorder.processed_fraction() == 1.0

    def test_processed_fraction_reflects_drops(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(0.0, dropped=25.0, offered=100.0))
        assert recorder.processed_fraction() == pytest.approx(0.75)

    def test_totals(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(0.0, processed=10, offered=20, dropped=5))
        recorder.record_tick(make_sample(1.0, processed=30, offered=20, dropped=0))
        assert recorder.total_processed() == 40
        assert recorder.total_offered() == 40
        assert recorder.total_dropped() == 5

    def test_empty_run_fraction_is_one(self):
        assert RunRecorder().processed_fraction() == 1.0


class TestAdaptationLog:
    def test_records_events(self):
        recorder = RunRecorder()
        recorder.record_adaptation(100.0, "scale out", "bottleneck")
        events = recorder.adaptations
        assert events[0].t_s == 100.0
        assert events[0].action == "scale out"
        assert events[0].detail == "bottleneck"

    def test_records_faults_separately(self):
        recorder = RunRecorder()
        recorder.record_fault(50.0, "site-crash", "edge-1 crashed")
        assert recorder.faults[0].kind == "site-crash"
        assert recorder.adaptations == []


class TestAnnotations:
    def test_merges_adaptations_and_faults_in_time_order(self):
        recorder = RunRecorder()
        recorder.record_adaptation(100.0, "scale out", "bottleneck")
        recorder.record_fault(50.0, "site-crash", "edge-1 crashed")
        recorder.record_fault(150.0, "site-crash:revert", "edge-1 recovered")
        merged = recorder.annotations()
        assert [e.t_s for e in merged] == [50.0, 100.0, 150.0]
        assert merged[0].action == "fault:site-crash"
        assert merged[1].action == "scale out"
        assert merged[2].action == "fault:site-crash:revert"

    def test_adaptation_precedes_fault_at_equal_time(self):
        recorder = RunRecorder()
        recorder.record_fault(60.0, "link-degrade", "")
        recorder.record_adaptation(60.0, "re-assign", "")
        merged = recorder.annotations()
        assert [e.action for e in merged] == ["re-assign", "fault:link-degrade"]

    def test_does_not_mutate_underlying_logs(self):
        recorder = RunRecorder()
        recorder.record_adaptation(10.0, "re-assign", "")
        recorder.record_fault(5.0, "site-crash", "")
        recorder.annotations()
        assert len(recorder.adaptations) == 1
        assert len(recorder.faults) == 1


class TestIdleWindowNan:
    """Regression: an all-idle window must not poison the distributions."""

    def test_all_idle_run_yields_nan_summaries(self):
        recorder = RunRecorder()
        for t in (1.0, 2.0, 3.0):
            recorder.record_tick(
                make_sample(t, delay=float("nan"), processed=0.0)
            )
        assert math.isnan(recorder.mean_delay())
        assert math.isnan(recorder.delay_percentile(95))
        xs, ys = recorder.delay_cdf()
        assert len(xs) == 0 and len(ys) == 0

    def test_idle_window_between_busy_ticks_is_skipped(self):
        recorder = RunRecorder()
        recorder.record_tick(make_sample(1.0, delay=2.0, processed=100.0))
        recorder.record_tick(
            make_sample(2.0, delay=float("nan"), processed=0.0)
        )
        recorder.record_tick(make_sample(3.0, delay=4.0, processed=100.0))
        assert recorder.mean_delay() == pytest.approx(3.0)
        assert recorder.delay_percentile(100) == pytest.approx(4.0)

    def test_distribution_helpers_skip_nan_defensively(self):
        # Even if a NaN observation reaches the internal arrays (e.g. a
        # future recording path forgets the record_tick guard), the
        # percentile/mean/CDF helpers must drop it rather than let NaN
        # propagate through sort/cumsum.
        recorder = RunRecorder()
        recorder.record_tick(make_sample(1.0, delay=2.0, processed=100.0))
        recorder._delay_values.append(float("nan"))
        recorder._delay_weights.append(50.0)
        assert recorder.mean_delay() == pytest.approx(2.0)
        assert recorder.delay_percentile(99) == pytest.approx(2.0)
        xs, _ = recorder.delay_cdf()
        assert not np.isnan(xs).any()

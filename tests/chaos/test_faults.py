"""Tests for repro.chaos.faults - the fault vocabulary."""

import pytest

from repro.chaos.faults import (
    BandwidthCollapse,
    ChaosTarget,
    CheckpointLoss,
    LinkFlap,
    SiteCrash,
    SlotRevocation,
    Straggler,
)
from repro.engine.checkpoint import CheckpointCoordinator
from repro.engine.state import StateStore
from repro.errors import ChaosError


@pytest.fixture
def target(small_topology):
    return ChaosTarget(topology=small_topology)


class TestSiteCrash:
    def test_apply_fails_site_and_revert_recovers(self, target):
        fault = SiteCrash("dc-2", duration_s=30.0)
        fault.validate(target)
        detail, state = fault.apply(target, 10.0)
        assert target.topology.site("dc-2").failed
        assert "crashed" in detail
        fault.revert(target, 40.0, state)
        assert not target.topology.site("dc-2").failed

    def test_does_not_recover_a_site_it_did_not_crash(self, target):
        target.topology.site("dc-2").fail()
        fault = SiteCrash("dc-2", duration_s=30.0)
        _, state = fault.apply(target, 10.0)
        fault.revert(target, 40.0, state)
        # Someone else holds the site down; chaos must not undo that.
        assert target.topology.site("dc-2").failed

    def test_callbacks_take_precedence(self, small_topology):
        failed, recovered = [], []
        target = ChaosTarget(
            topology=small_topology,
            fail_site=lambda name, t: failed.append((name, t)),
            recover_site=lambda name, t: recovered.append((name, t)),
        )
        fault = SiteCrash("dc-1", duration_s=5.0)
        _, state = fault.apply(target, 1.0)
        fault.revert(target, 6.0, state)
        assert failed == [("dc-1", 1.0)]
        # revert only fires when apply actually crashed via the fault; the
        # callback did not mark the site failed, so apply saw it healthy.
        assert recovered == [("dc-1", 6.0)]

    def test_unknown_site_rejected(self, target):
        with pytest.raises(ChaosError):
            SiteCrash("nope").validate(target)

    def test_non_positive_duration_rejected(self, target):
        with pytest.raises(ChaosError):
            SiteCrash("dc-1", duration_s=0.0).validate(target)


class TestBandwidthCollapse:
    def test_apply_scales_link_and_revert_restores(self, target):
        fault = BandwidthCollapse("dc-1", "dc-2", factor=0.0)
        fault.validate(target)
        fault.apply(target, 0.0)
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 0.0
        fault.revert(target, 10.0, None)
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 100.0

    def test_reassert_wins_over_scripted_dynamics(self, target):
        fault = BandwidthCollapse("dc-1", "dc-2", factor=0.1)
        fault.apply(target, 0.0)
        # A global bandwidth schedule overwrites the factor mid-fault...
        target.topology.set_global_bandwidth_factor(1.0)
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 100.0
        # ...but the injector reasserts the fault every tick.
        fault.reassert(target, 1.0, None)
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 10.0

    def test_undefined_link_rejected(self, target):
        with pytest.raises(ChaosError):
            BandwidthCollapse("dc-1", "nope").validate(target)

    def test_negative_factor_rejected(self, target):
        with pytest.raises(ChaosError):
            BandwidthCollapse("dc-1", "dc-2", factor=-1.0).validate(target)


class TestLinkFlap:
    def test_phases_alternate(self, target):
        fault = LinkFlap(
            "dc-1", "dc-2", factor=0.0, down_s=10.0, up_s=5.0,
            duration_s=60.0,
        )
        fault.validate(target)
        _, anchor = fault.apply(target, 100.0)
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 0.0
        fault.reassert(target, 109.0, anchor)  # 9 s in: still down
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 0.0
        fault.reassert(target, 112.0, anchor)  # 12 s in: up phase
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 100.0
        fault.reassert(target, 116.0, anchor)  # 16 s in: down again
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 0.0
        fault.revert(target, 160.0, anchor)
        assert target.topology.bandwidth_mbps("dc-1", "dc-2") == 100.0

    def test_non_positive_phase_rejected(self, target):
        with pytest.raises(ChaosError):
            LinkFlap("dc-1", "dc-2", down_s=0.0).validate(target)


class TestStraggler:
    def test_apply_and_revert(self, target):
        fault = Straggler("edge-x", slowdown=4.0, duration_s=20.0)
        fault.validate(target)
        fault.apply(target, 0.0)
        assert target.topology.site("edge-x").slowdown == 4.0
        fault.revert(target, 20.0, None)
        assert target.topology.site("edge-x").slowdown == 1.0

    def test_sub_unity_slowdown_rejected(self, target):
        with pytest.raises(ChaosError):
            Straggler("edge-x", slowdown=0.5).validate(target)


class TestCheckpointLoss:
    def _coordinator(self):
        store = StateStore()
        store.initialize_stage("agg", 10.0, ["dc-1"])
        store.initialize_stage("join", 5.0, ["dc-1", "dc-2"])
        coordinator = CheckpointCoordinator(store, 30.0)
        coordinator.checkpoint_all(30.0)
        return coordinator

    def test_drops_every_record_at_site(self, small_topology):
        coordinator = self._coordinator()
        target = ChaosTarget(
            topology=small_topology, checkpoints=coordinator
        )
        fault = CheckpointLoss("dc-1")
        fault.validate(target)
        detail, _ = fault.apply(target, 40.0)
        assert coordinator.record("agg", "dc-1") is None
        assert coordinator.record("join", "dc-1") is None
        assert coordinator.record("join", "dc-2") is not None
        assert "agg" in detail and "join" in detail

    def test_requires_a_coordinator(self, target):
        with pytest.raises(ChaosError):
            CheckpointLoss("dc-1").validate(target)

    def test_no_records_is_harmless(self, small_topology):
        target = ChaosTarget(
            topology=small_topology,
            checkpoints=CheckpointCoordinator(StateStore(), 30.0),
        )
        detail, _ = CheckpointLoss("dc-1").apply(target, 0.0)
        assert "no checkpoints" in detail


class TestSlotRevocation:
    def test_revokes_only_free_slots(self, target):
        site = target.topology.site("edge-x")
        site.allocate(3)  # 1 of 4 free
        fault = SlotRevocation("edge-x", count=10, duration_s=30.0)
        fault.validate(target)
        detail, state = fault.apply(target, 0.0)
        assert state == 1
        assert site.total_slots == 3
        assert "1 slot" in detail

    def test_revert_restores_the_actual_count(self, target):
        site = target.topology.site("edge-x")
        site.allocate(2)
        fault = SlotRevocation("edge-x", count=2, duration_s=30.0)
        _, state = fault.apply(target, 0.0)
        assert site.total_slots == 2
        fault.revert(target, 30.0, state)
        assert site.total_slots == 4

    def test_zero_count_rejected(self, target):
        with pytest.raises(ChaosError):
            SlotRevocation("edge-x", count=0).validate(target)

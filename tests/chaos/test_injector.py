"""Tests for repro.chaos.injector - scheduling and determinism."""

import numpy as np
import pytest

from repro.chaos import (
    BandwidthCollapse,
    ChaosInjector,
    ChaosTarget,
    SiteCrash,
    Straggler,
)
from repro.core.transaction import AdaptationPoint
from repro.errors import ChaosError
from repro.sim.recorder import RunRecorder


def make_injector(small_topology, seed=7, recorder=None):
    injector = ChaosInjector(
        np.random.default_rng(seed), recorder=recorder
    )
    target = ChaosTarget(topology=small_topology)
    return injector, target


class TestAtTrigger:
    def test_fires_once_at_first_tick_at_or_after(self, small_topology):
        injector, target = make_injector(small_topology)
        injector.at(10.0, SiteCrash("dc-2"))
        injector.attach(target)
        injector.tick(9.0)
        assert not small_topology.site("dc-2").failed
        injector.tick(10.0)
        assert small_topology.site("dc-2").failed
        # One-shot: recover manually and verify it does not re-fire.
        small_topology.site("dc-2").recover()
        injector.tick(11.0)
        assert not small_topology.site("dc-2").failed

    def test_negative_time_rejected(self, small_topology):
        injector, _ = make_injector(small_topology)
        with pytest.raises(ChaosError):
            injector.at(-1.0, SiteCrash("dc-2"))


class TestEveryTrigger:
    def test_fires_periodically_with_count_cap(self, small_topology):
        recorder = RunRecorder()
        injector, target = make_injector(small_topology, recorder=recorder)
        injector.every(
            10.0, Straggler("edge-x", slowdown=2.0), start_s=5.0, count=3
        )
        injector.attach(target)
        for t in range(40):
            injector.tick(float(t))
        fired = [f.t_s for f in recorder.faults if f.kind == "straggler"]
        assert fired == [5.0, 15.0, 25.0]


class TestProbabilityTrigger:
    def test_deterministic_for_a_seed(self, small_topology):
        def firing_ticks(seed):
            topo_recorder = RunRecorder()
            injector = ChaosInjector(
                np.random.default_rng(seed), recorder=topo_recorder
            )
            injector.with_probability(
                0.2, Straggler("edge-x", slowdown=2.0, duration_s=1.0),
                start_s=0.0, end_s=100.0,
            )
            injector.attach(ChaosTarget(topology=small_topology))
            for t in range(100):
                injector.tick(float(t))
            return [f.t_s for f in topo_recorder.faults
                    if f.kind == "straggler"]

        assert firing_ticks(7) == firing_ticks(7)
        assert firing_ticks(7) != firing_ticks(8)

    def test_adding_a_rule_does_not_perturb_earlier_rules(
        self, small_topology
    ):
        def first_rule_ticks(extra_rule):
            recorder = RunRecorder()
            injector = ChaosInjector(
                np.random.default_rng(7), recorder=recorder
            )
            injector.with_probability(
                0.2, Straggler("edge-x", slowdown=2.0, duration_s=1.0),
                end_s=100.0,
            )
            if extra_rule:
                injector.with_probability(
                    0.5, Straggler("dc-1", slowdown=2.0, duration_s=1.0),
                    end_s=100.0,
                )
            injector.attach(ChaosTarget(topology=small_topology))
            for t in range(100):
                injector.tick(float(t))
            return [
                f.t_s for f in recorder.faults
                if f.kind == "straggler" and "edge-x" in f.detail
            ]

        assert first_rule_ticks(False) == first_rule_ticks(True)

    def test_invalid_probability_rejected(self, small_topology):
        injector, _ = make_injector(small_topology)
        with pytest.raises(ChaosError):
            injector.with_probability(1.5, SiteCrash("dc-2"))


class TestDurationsAndReassert:
    def test_duration_bound_fault_reverts(self, small_topology):
        injector, target = make_injector(small_topology)
        injector.at(5.0, SiteCrash("dc-2", duration_s=10.0))
        injector.attach(target)
        injector.tick(5.0)
        assert small_topology.site("dc-2").failed
        assert injector.active_faults
        injector.tick(14.0)
        assert small_topology.site("dc-2").failed
        injector.tick(15.0)
        assert not small_topology.site("dc-2").failed
        assert not injector.active_faults

    def test_continuous_fault_beats_external_writes(self, small_topology):
        injector, target = make_injector(small_topology)
        injector.at(
            0.0,
            BandwidthCollapse("dc-1", "dc-2", factor=0.0, duration_s=20.0),
        )
        injector.attach(target)
        injector.tick(0.0)
        # Scripted dynamics overwrite the factor between ticks...
        small_topology.set_bandwidth_factor("dc-1", "dc-2", 1.0)
        injector.tick(1.0)
        # ...but the injector reasserts its grip every tick.
        assert small_topology.bandwidth_mbps("dc-1", "dc-2") == 0.0
        injector.tick(20.0)
        assert small_topology.bandwidth_mbps("dc-1", "dc-2") == 100.0


class TestAttachValidation:
    def test_typoed_site_fails_at_attach_not_mid_run(self, small_topology):
        injector, target = make_injector(small_topology)
        injector.at(10.0, SiteCrash("dc-9000"))
        with pytest.raises(ChaosError):
            injector.attach(target)

    def test_point_rule_requires_a_manager(self, small_topology):
        injector, target = make_injector(small_topology)
        injector.at_point(
            AdaptationPoint.MIGRATION_IN_FLIGHT, SiteCrash("dc-2")
        )
        with pytest.raises(ChaosError):
            injector.attach(target)

    def test_tick_before_attach_rejected(self, small_topology):
        injector, _ = make_injector(small_topology)
        with pytest.raises(ChaosError):
            injector.tick(0.0)


class TestRecording:
    def test_fault_timeline_is_recorded(self, small_topology):
        recorder = RunRecorder()
        injector, target = make_injector(small_topology, recorder=recorder)
        injector.at(5.0, SiteCrash("dc-2", duration_s=5.0))
        injector.attach(target)
        for t in range(12):
            injector.tick(float(t))
        kinds = [(f.t_s, f.kind) for f in recorder.faults]
        assert kinds == [(5.0, "site-crash"), (10.0, "site-crash:revert")]

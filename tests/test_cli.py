"""Tests for the python -m repro command-line interface."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main


class TestList:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "topk-topics" in out
        assert "WASP" in out
        assert "fig13" in out


class TestRun:
    def test_run_short(self, capsys):
        code = main(
            [
                "run", "--query", "ysb-advertising", "--variant", "WASP",
                "--dynamics", "quiet", "--duration", "60", "--seed", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean delay" in out
        assert "WASP" in out

    def test_run_multiple_variants(self, capsys):
        code = main(
            [
                "run", "--query", "ysb-advertising",
                "--variant", "No Adapt", "--variant", "Degrade",
                "--dynamics", "quiet", "--duration", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "No Adapt" in out and "Degrade" in out

    def test_unknown_variant_fails_cleanly(self, capsys):
        code = main(
            ["run", "--variant", "Nonsense", "--duration", "10"]
        )
        assert code == 2
        assert "unknown variant" in capsys.readouterr().err

    def test_unknown_query_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--query", "nope"])


class TestFigures:
    def test_fig2(self, capsys):
        assert main(["figures", "fig2"]) == 0
        assert "Oregon" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["figures", "fig7"]) == 0
        assert "edge bandwidth" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["figures", "table2"]) == 0
        assert "Task Re-Assignment" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["figures", "table3"]) == 0
        assert "Top-K Topics" in capsys.readouterr().out

    def test_fig13(self, capsys):
        assert main(["figures", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "WASP/none" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])


class TestFuzz:
    def test_campaign_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = main(["fuzz", "--seeds", "2", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 2 seeds" in out
        assert "failing seeds : 0/2" in out
        assert "checks exercised:" in out
        assert "conservation" in out
        report = json.loads(out_path.read_text())
        assert report["schema"] == "wasp-fuzz-campaign/v1"
        assert report["num_failing"] == 0

    def test_replay_pinned_fixture(self, capsys):
        fixture = (
            Path(__file__).parent / "fuzz" / "fixtures" / "conservation.json"
        )
        code = main(["fuzz", "--replay", str(fixture)])
        assert code == 0
        out = capsys.readouterr().out
        assert "pinned-invariant=conservation" in out
        assert "violations: none" in out

    def test_replay_rejects_non_artifact(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "other/v1"}')
        assert main(["fuzz", "--replay", str(bogus)]) == 2
        assert "not a wasp-fuzz-repro/v1" in capsys.readouterr().err

"""Tests for repro.api - the public facade."""

import pytest

from repro import api
from repro.errors import WaspError


class TestBuilders:
    def test_build_testbed(self):
        topo = api.build_testbed(seed=1)
        assert len(topo.site_names) == 16

    def test_benchmark_query(self):
        topo = api.build_testbed(seed=1)
        query = api.benchmark_query("topk-topics", topo, seed=1)
        assert query.name == "topk-topics"

    def test_unknown_query_rejected(self):
        topo = api.build_testbed(seed=1)
        with pytest.raises(WaspError):
            api.benchmark_query("nope", topo)


class TestLaunch:
    def test_launch_by_name(self):
        run = api.launch("ysb-advertising", api.no_adapt(), seed=3)
        assert run.runtime.plan.deployed()
        assert run.manager is None

    def test_launch_default_variant_is_wasp(self):
        run = api.launch("ysb-advertising", seed=3)
        assert run.manager is not None

    def test_launch_prebuilt_query(self):
        topo = api.build_testbed(seed=4)
        query = api.benchmark_query("events-of-interest", topo, seed=4)
        run = api.launch(query, api.degrade(), topology=topo, seed=4)
        assert run.runtime.degrade_slo_s == 10.0

    def test_launch_unknown_name_rejected(self):
        with pytest.raises(WaspError):
            api.launch("nope")

    def test_short_run_produces_metrics(self):
        run = api.launch("ysb-advertising", api.no_adapt(), seed=3)
        recorder = run.run(30, api.quiet_dynamics())
        assert recorder.mean_delay() > 0
        assert recorder.processed_fraction() == 1.0

    def test_custom_config(self):
        config = api.WaspConfig.paper_defaults().with_overrides(alpha=0.6)
        run = api.launch("ysb-advertising", api.wasp(), config=config)
        assert run.manager.config.alpha == 0.6


class TestDynamicsHelpers:
    def test_bottleneck_dynamics_importable(self):
        dyn = api.bottleneck_dynamics()
        assert dyn.workload_schedule is not None

    def test_quiet_dynamics_empty(self):
        dyn = api.quiet_dynamics()
        assert dyn.workload_schedule is None
        assert dyn.failures == []

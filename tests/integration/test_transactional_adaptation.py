"""Acceptance tests for the chaos harness + transactional adaptation.

The tentpole invariant: a seeded chaos scenario that kills a site while a
state migration is in flight must leave the system consistent - no stage
references a failed site, slot accounting balances, state-store ownership
matches placement - with the rollback and the fallback technique recorded.
And determinism: the same seed with the same chaos spec reproduces the
adaptation record byte-for-byte.
"""

import numpy as np
import pytest

from repro.baselines.variants import no_adapt, wasp
from repro.chaos import ChaosInjector, SiteCrash, Straggler
from repro.core.actions import ReassignAction
from repro.core.transaction import AdaptationPoint
from repro.experiments.harness import ExperimentRun
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import ysb_advertising


def make_run(variant, seed=11):
    rngs = RngRegistry(seed)
    topology = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topology)
    run = ExperimentRun(topology, query, variant, rngs=rngs)
    return run, rngs


def stateful_stage(run):
    """A deployed stateful stage and the site holding (some of) its state."""
    for stage in run.runtime.plan.topological_stages():
        if stage.stateful and stage.parallelism > 0:
            sites = run.state_store.sites(stage.name)
            if sites:
                return stage, sites[0]
    pytest.fail("query has no deployed stateful stage")


def assert_consistent(run):
    failed = {s.name for s in run.topology if s.failed}
    for stage in run.runtime.plan.topological_stages():
        if stage.is_source:
            continue
        placement = stage.placement()
        # No stage references a failed site.
        assert not set(placement) & failed, stage.name
        # State-store ownership matches placement.
        if stage.stateful:
            assert set(run.state_store.sites(stage.name)) <= set(
                placement
            ), stage.name
    # Slot accounting balances: every live task is backed by a used slot.
    tasks_at = {}
    for stage in run.runtime.plan.topological_stages():
        for site, count in stage.placement().items():
            tasks_at[site] = tasks_at.get(site, 0) + count
    for site in run.topology:
        if not site.failed:
            assert site.used_slots >= tasks_at.get(site.name, 0)


class TestKillSiteMidMigration:
    def test_consistent_after_rollback_and_fallback(self):
        run, rngs = make_run(wasp())
        stage, state_site = stateful_stage(run)
        # Pick a migration destination with capacity, distinct from where
        # the state lives today.
        destination = next(
            name
            for name, free in sorted(
                run.topology.available_slots().items()
            )
            if free > 0 and name not in stage.placement()
        )
        chaos = ChaosInjector(rngs.stream("chaos"))
        chaos.at_point(
            AdaptationPoint.MIGRATION_IN_FLIGHT,
            SiteCrash(destination),
            stage=stage.name,
        )
        run.attach_chaos(chaos)
        run.run(10.0)

        # Drive a cross-site move of the stateful stage; chaos kills the
        # destination the moment the transfer is in flight.
        record = run.manager._execute(
            ReassignAction(
                stage.name, "chaos-acceptance", {destination: 1}
            ),
            now_s=10.0,
        )
        assert run.topology.site(destination).failed
        outcomes = [(a.attempt, a.outcome) for a in run.manager.attempt_log]
        assert outcomes[0] == ("primary", "rolled-back")
        assert record is not None and record.attempt != "primary"
        assert destination not in run.runtime.plan.stage(
            stage.name
        ).placement()
        assert_consistent(run)

        # The timeline recorded the fault, the rollback and the fallback.
        assert any(
            f.kind == "site-crash" for f in run.recorder.faults
        )
        actions = [e.action for e in run.recorder.adaptations]
        assert "rollback" in actions
        assert any(a.startswith("fallback:") for a in actions)

        # The run keeps going without tripping any invariant.
        run.run(60.0)
        assert_consistent(run)
        assert run.recorder.total_dropped() == 0.0


class TestChaosDeterminism:
    def _chaos_run(self, seed):
        run, rngs = make_run(wasp(), seed=seed)
        _, state_site = stateful_stage(run)
        chaos = ChaosInjector(rngs.stream("chaos"))
        chaos.at(45.0, SiteCrash(state_site, duration_s=40.0))
        chaos.with_probability(
            0.02,
            Straggler("edge-3", slowdown=6.0, duration_s=15.0),
            start_s=20.0,
            end_s=160.0,
        )
        run.attach_chaos(chaos)
        run.run(200.0)
        return (
            repr(run.recorder.adaptations),
            repr(run.recorder.faults),
            repr(run.manager.attempt_log),
            repr(run.manager.history),
        )

    def test_same_seed_same_spec_byte_identical_records(self):
        assert self._chaos_run(11) == self._chaos_run(11)

    def test_chaos_actually_fired(self):
        records = self._chaos_run(11)
        assert "site-crash" in records[1]


class TestChaosRecoveryReplay:
    def test_crash_and_recovery_injects_checkpoint_replay(self):
        """A chaos crash gets the same recovery semantics as a scripted
        one: on recovery the un-checkpointed window re-enters the input
        queues (EngineRuntime.inject_replay)."""
        run, rngs = make_run(no_adapt(), seed=13)
        _, state_site = stateful_stage(run)
        chaos = ChaosInjector(rngs.stream("chaos"))
        # Crash after the t=30 checkpoint round, recover at t=90.
        chaos.at(50.0, SiteCrash(state_site, duration_s=40.0))
        run.attach_chaos(chaos)
        run.run(120.0)
        assert not run.topology.site(state_site).failed
        assert run.replayed_source_equiv > 0.0
        # The replay window is bounded by the checkpoint that completed at
        # t=30: at most 20 s of work replays from each affected task.
        kinds = [f.kind for f in run.recorder.faults]
        assert kinds == ["site-crash", "site-crash:revert"]

    def test_checkpoint_rounds_skip_chaos_failed_sites(self):
        run, rngs = make_run(no_adapt(), seed=13)
        _, state_site = stateful_stage(run)
        chaos = ChaosInjector(rngs.stream("chaos"))
        chaos.at(50.0, SiteCrash(state_site, duration_s=40.0))
        run.attach_chaos(chaos)
        run.run(80.0)  # checkpoint round at t=60 happens mid-failure
        record = None
        for stage in run.runtime.plan.topological_stages():
            if stage.stateful:
                record = run.checkpoints.record(stage.name, state_site)
                if record is not None:
                    break
        # The t=60 round skipped the dead site, so its newest snapshot
        # predates the crash.
        assert record is not None
        assert record.taken_at_s < 50.0


class TestDualChaosAndDynamics:
    def test_scripted_dynamics_and_chaos_compose(self):
        """Chaos faults and DynamicsSpec failures coexist: the harness
        never recovers a site the scripted dynamics still hold down."""
        from repro.experiments.harness import DynamicsSpec, FailureEvent

        run, rngs = make_run(no_adapt(), seed=17)
        _, state_site = stateful_stage(run)
        chaos = ChaosInjector(rngs.stream("chaos"))
        # Chaos crash ends at t=60 while the scripted failure (40..100)
        # still holds the site down.
        chaos.at(30.0, SiteCrash(state_site, duration_s=30.0))
        run.attach_chaos(chaos)
        run.set_dynamics(
            DynamicsSpec(
                failures=[
                    FailureEvent(
                        t_s=40.0, duration_s=60.0, sites=(state_site,)
                    )
                ]
            )
        )
        run.run(70.0)
        # Chaos's revert at t=60 must not resurrect the site.
        assert run.topology.site(state_site).failed
        run.run(50.0)
        assert not run.topology.site(state_site).failed

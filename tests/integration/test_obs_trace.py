"""Integration: a traced chaos run round-trips through JSONL exactly.

Two guarantees from the observability subsystem are checked end to end:

* **Fidelity** - with a JSONL sink attached, every committed and rolled-back
  adaptation the controller performed is reconstructible from the trace
  alone (action, attempt labels, fallback hops, migration megabytes/bytes
  and durations), matching ``manager.history`` / ``manager.attempt_log``.
* **Zero overhead** - with no sink (or a passive ring buffer) attached, a
  fixed-seed run records bit-identical output to an uninstrumented one.
"""

import pytest

from benchmarks.perf.digest import DIGEST_SEED, _build_run, recorder_digest
from repro.baselines.variants import wasp
from repro.chaos import ChaosInjector, SiteCrash
from repro.chaos.faults import BandwidthCollapse
from repro.core.actions import ReassignAction
from repro.core.transaction import AdaptationPoint
from repro.experiments.harness import ExperimentRun
from repro.experiments.scenarios import bottleneck_dynamics
from repro.network.traces import paper_testbed
from repro.obs import JsonlSink, RingBufferSink, read_jsonl, reconstruct, require_valid
from repro.obs.trace import render_timeline
from repro.sim.rng import RngRegistry
from repro.workloads.queries import ysb_advertising

SEED = 11
DURATION_S = 220.0


def chaos_example_run(trace_path=None):
    """The examples/chaos_run.py scenario: crash the migration destination."""
    rngs = RngRegistry(SEED)
    topology = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topology)
    run = ExperimentRun(topology, query, wasp(), rngs=rngs)
    if trace_path is not None:
        run.attach_trace(trace_path)

    stage = destination = None
    for candidate in run.runtime.plan.topological_stages():
        if candidate.stateful and candidate.parallelism > 0:
            placement = candidate.placement()
            for name, free in sorted(run.topology.available_slots().items()):
                if free > 0 and name not in placement:
                    stage, destination = candidate, name
                    break
        if stage is not None:
            break
    assert stage is not None, "query has no movable stateful stage"

    chaos = ChaosInjector(rngs.stream("chaos"))
    chaos.at_point(
        AdaptationPoint.MIGRATION_IN_FLIGHT,
        SiteCrash(destination, duration_s=60.0),
        stage=stage.name,
    )
    run.attach_chaos(chaos)

    run.run(10.0)
    record = run.manager.execute(
        ReassignAction(stage.name, "operator move", {destination: 1}),
        now_s=10.0,
    )
    run.run(110.0)
    run.obs.close()
    return run, record


def traced_chaos_controller_run(trace_path):
    """The digest chaos scenario with a JSONL trace attached: faults strike
    the running control loop, so adaptations happen inside rounds."""
    run = _build_run(DIGEST_SEED)
    run.attach_trace(trace_path)
    injector = (
        ChaosInjector(rng=RngRegistry(DIGEST_SEED).stream("chaos"))
        .at(120.0, SiteCrash(site="edge-1", duration_s=45.0))
        .at(
            200.0,
            BandwidthCollapse(
                src="dc-oregon", dst="dc-ohio", factor=0.3, duration_s=60.0
            ),
        )
    )
    run.attach_chaos(injector)
    run.run(DURATION_S, bottleneck_dynamics())
    run.obs.close()
    return run


class TestChaosTraceRoundTrip:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "chaos.jsonl"
        run, record = chaos_example_run(path)
        return run, record, read_jsonl(path)

    def test_every_record_is_schema_valid(self, traced):
        _, _, records = traced
        assert records, "trace is empty"
        for record in records:
            require_valid(record)

    def test_sequence_is_contiguous(self, traced):
        _, _, records = traced
        assert [r["seq"] for r in records] == list(range(1, len(records) + 1))

    def test_fallback_chain_reconstructed(self, traced):
        run, record, records = traced
        summary = reconstruct(records)
        # The direct manager.execute call is one orphan action whose attempt
        # chain mirrors the controller's attempt_log exactly.
        assert len(summary.orphan_actions) == 1
        action = summary.orphan_actions[0]
        # attempt_log spans the whole run (the control loop may adapt again
        # later, inside a round); the trace must mirror it attempt for
        # attempt across orphan and in-round actions alike.
        assert [
            (a.label, a.outcome)
            for act in summary.all_actions
            for a in act.attempts
        ] == [(a.attempt, a.outcome) for a in run.manager.attempt_log]
        # Chaos killed the migration destination: the primary rolled back
        # and a fallback hop led to the attempt that finally committed.
        assert action.rolled_back, "expected the primary attempt to roll back"
        assert action.hops, "expected at least one fallback hop"
        assert action.hops[0][0] == "primary"
        committed = action.committed
        assert committed is not None
        assert committed.label == record.attempt
        assert committed.transition_s == pytest.approx(record.transition_s)

    def test_committed_migration_bytes_and_duration(self, traced):
        run, record, records = traced
        committed = reconstruct(records).orphan_actions[0].committed
        assert record.migration is not None
        assert committed.migration_mb == pytest.approx(record.migration.total_mb)
        assert committed.migration_s == pytest.approx(
            record.migration.transition_s
        )
        assert sum(t.bytes for t in committed.transfers) == pytest.approx(
            record.migration.total_mb * 1e6
        )
        for transfer in committed.transfers:
            assert transfer.bandwidth_mbps > 0
            assert transfer.duration_s >= 0

    def test_faults_match_recorder(self, traced):
        run, _, records = traced
        summary = reconstruct(records)
        assert len(summary.faults) == len(run.recorder.faults)
        applies = [f for f in summary.faults if f["phase"] == "apply"]
        reverts = [f for f in summary.faults if f["phase"] == "revert"]
        assert applies and reverts, "expected the crash and its revert"

    def test_timeline_renders(self, traced):
        _, _, records = traced
        text = render_timeline(records)
        assert "direct action" in text
        assert "rolled-back" in text
        assert "fault" in text

    def test_trace_is_deterministic(self, tmp_path, traced):
        path = tmp_path / "again.jsonl"
        chaos_example_run(path)
        _, _, records = traced
        assert read_jsonl(path) == records


class TestControllerRoundTrace:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "rounds.jsonl"
        run = traced_chaos_controller_run(path)
        return run, read_jsonl(path)

    def test_rounds_and_windows_present(self, traced):
        _, records = traced
        summary = reconstruct(records)
        assert summary.rounds, "control loop emitted no rounds"
        assert any(r.window is not None for r in summary.rounds)
        assert any(r.diagnoses for r in summary.rounds)

    def test_every_adaptation_reconstructible(self, traced):
        run, records = traced
        summary = reconstruct(records)
        committed = [a.committed for a in summary.all_actions if a.committed]
        history = run.manager.history
        assert [(c.stage, c.action) for c in committed] == [
            (r.stage, r.kind.value) for r in history
        ]
        for trace_attempt, record in zip(committed, history):
            assert trace_attempt.label == record.attempt
            assert trace_attempt.transition_s == pytest.approx(
                record.transition_s
            )
            if record.migration is not None and record.migration.transfers:
                assert trace_attempt.migration_mb == pytest.approx(
                    record.migration.total_mb
                )
                assert trace_attempt.migration_s == pytest.approx(
                    record.migration.transition_s
                )

    def test_rollbacks_match_attempt_log(self, traced):
        run, records = traced
        summary = reconstruct(records)
        trace_attempts = [
            (a.stage, a.label, a.outcome)
            for act in summary.all_actions
            for a in act.attempts
        ]
        log_attempts = [
            (a.stage, a.attempt, a.outcome) for a in run.manager.attempt_log
        ]
        assert trace_attempts == log_attempts


class TestZeroOverheadDigest:
    def test_attached_ring_buffer_does_not_change_recorder_output(self):
        def digest(attach_sink):
            run = _build_run(DIGEST_SEED)
            sink = run.obs.attach(RingBufferSink()) if attach_sink else None
            run.run(DURATION_S, bottleneck_dynamics())
            if sink is not None:
                assert len(sink) > 0
            run.obs.close()
            return recorder_digest(run.recorder)

        assert digest(False) == digest(True)

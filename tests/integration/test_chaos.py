"""Chaos testing: random dynamics must never break system invariants.

Hypothesis generates random (but bounded) combinations of workload steps,
bandwidth steps, failures and stragglers; whatever happens, the system must
uphold its invariants: no exceptions, conserved slot accounting, sane
quality accounting, and - for the WASP variant - no dropped events.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.variants import degrade, no_adapt, wasp
from repro.experiments.harness import (
    DynamicsSpec,
    ExperimentRun,
    FailureEvent,
    StragglerEvent,
)
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.sim.schedule import Schedule
from repro.workloads.queries import ysb_advertising

DURATION_S = 180.0

workload_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=DURATION_S),
        st.floats(min_value=0.2, max_value=3.0),
    ),
    max_size=4,
    unique_by=lambda p: p[0],
).map(lambda points: Schedule(points))

bandwidth_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=DURATION_S),
        st.floats(min_value=0.2, max_value=2.0),
    ),
    max_size=4,
    unique_by=lambda p: p[0],
).map(lambda points: Schedule(points))

failures = st.lists(
    st.builds(
        FailureEvent,
        t_s=st.floats(min_value=10.0, max_value=DURATION_S - 40.0),
        duration_s=st.floats(min_value=5.0, max_value=30.0),
    ),
    max_size=2,
)

stragglers = st.lists(
    st.builds(
        StragglerEvent,
        t_s=st.floats(min_value=10.0, max_value=DURATION_S - 40.0),
        duration_s=st.floats(min_value=5.0, max_value=60.0),
        site=st.sampled_from(
            [f"edge-{i}" for i in range(8)]
            + ["dc-oregon", "dc-ohio", "dc-ireland"]
        ),
        slowdown=st.floats(min_value=1.5, max_value=16.0),
    ),
    max_size=2,
)

dynamics_spec = st.builds(
    DynamicsSpec,
    workload_schedule=workload_schedules,
    bandwidth_schedule=bandwidth_schedules,
    failures=failures,
    stragglers=stragglers,
)


def run_chaos(variant, dynamics, seed):
    rngs = RngRegistry(seed)
    topology = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topology)
    run = ExperimentRun(topology, query, variant, rngs=rngs)
    run.run(DURATION_S, dynamics)
    return run


class TestInvariantsUnderChaos:
    @given(dynamics_spec, st.integers(min_value=0, max_value=2**16))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_wasp_never_drops_and_accounting_holds(self, dynamics, seed):
        run = run_chaos(wasp(), dynamics, seed)
        recorder = run.recorder

        # Re-optimization never sacrifices events (Table 2).
        assert recorder.total_dropped() == 0.0
        assert recorder.processed_fraction() == 1.0

        # Slot accounting is conserved: used slots equal live tasks.
        assert run.topology.total_used_slots() == (
            run.runtime.plan.total_parallelism()
        )
        for site in run.topology:
            assert 0 <= site.used_slots <= site.total_slots

        # Event accounting: everything offered is either processed, queued
        # or in flight (fluid mass conservation, in source-equivalents).
        # Checkpoint replay after a failure legitimately re-processes the
        # un-snapshotted work, so the bound includes the replayed volume.
        offered = recorder.total_offered()
        processed = recorder.total_processed()
        budget = offered + run.replayed_source_equiv
        assert processed <= budget * 1.02 + 1.0

        # State never evaporates for live stateful stages.
        for stage in run.runtime.plan.topological_stages():
            if stage.stateful and stage.parallelism > 0:
                assert run.state_store.total_mb(stage.name) >= 0.0

    @given(dynamics_spec, st.integers(min_value=0, max_value=2**16))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_degrade_bounds_delay_of_survivors(self, dynamics, seed):
        run = run_chaos(degrade(), dynamics, seed)
        delays = run.recorder.delay_series()
        finite = delays[~np.isnan(delays)]
        if len(finite):
            # Dropping late events keeps survivor delay near the SLO (the
            # transition after a failure may briefly exceed it).
            assert float(np.percentile(finite, 90)) < 15.0

    @given(dynamics_spec, st.integers(min_value=0, max_value=2**16))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_no_adapt_is_deterministically_safe(self, dynamics, seed):
        run = run_chaos(no_adapt(), dynamics, seed)
        assert run.recorder.total_dropped() == 0.0
        assert run.topology.total_used_slots() == (
            run.runtime.plan.total_parallelism()
        )

"""End-to-end integration tests: the paper's adaptation narratives.

These run complete experiments (topology + query + controller + dynamics)
and assert the *qualitative* claims of Section 8 - who wins, in which
direction, with what side effects - not absolute numbers.
"""

import numpy as np
import pytest

from repro.baselines.variants import degrade, no_adapt, wasp
from repro.core.actions import ActionKind
from repro.experiments.harness import DynamicsSpec, ExperimentRun, FailureEvent
from repro.experiments.scenarios import bottleneck_dynamics
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.sim.schedule import Schedule
from repro.workloads.queries import topk_topics, ysb_advertising


def make_run(variant, *, seed=42, query_factory=ysb_advertising):
    rngs = RngRegistry(seed)
    topo = paper_testbed(rngs.stream("topology"))
    if query_factory is ysb_advertising:
        query = query_factory(topo)
    else:
        query = query_factory(topo, rngs.stream("query"))
    return ExperimentRun(topo, query, variant, rngs=rngs)


def mean_delay(recorder, lo, hi):
    series = recorder.delay_series()[lo:hi]
    series = series[~np.isnan(series)]
    return float(np.mean(series)) if len(series) else float("nan")


class TestWorkloadStep:
    """Section 8.4, first interval: rate doubles at t=300 (compressed to
    t=60 here for test speed)."""

    DYNAMICS = DynamicsSpec(
        workload_schedule=Schedule([(0.0, 1.0), (60.0, 2.0)])
    )

    def test_no_adapt_degrades(self):
        run = make_run(no_adapt())
        run.run(240, self.DYNAMICS)
        baseline = mean_delay(run.recorder, 30, 60)
        stressed = mean_delay(run.recorder, 180, 240)
        assert stressed > 5 * baseline

    def test_wasp_holds_latency(self):
        run = make_run(wasp())
        run.run(240, self.DYNAMICS)
        baseline = mean_delay(run.recorder, 30, 60)
        stressed = mean_delay(run.recorder, 180, 240)
        assert stressed < 3 * baseline
        assert run.manager.history  # it actually adapted

    def test_wasp_processes_everything(self):
        run = make_run(wasp())
        run.run(240, self.DYNAMICS)
        assert run.recorder.processed_fraction() == 1.0

    def test_degrade_holds_slo_by_dropping(self):
        run = make_run(degrade())
        run.run(300, self.DYNAMICS)
        stressed = mean_delay(run.recorder, 200, 300)
        assert stressed < 10.5  # the SLO
        assert run.recorder.total_dropped() > 0
        assert run.recorder.processed_fraction() < 1.0


class TestBandwidthDrop:
    """Section 8.4, second phase: all links halved."""

    DYNAMICS = DynamicsSpec(
        bandwidth_schedule=Schedule([(0.0, 1.0), (60.0, 0.5)])
    )

    def test_wasp_beats_no_adapt(self):
        adapted = make_run(wasp())
        adapted.run(300, self.DYNAMICS)
        static = make_run(no_adapt())
        static.run(300, self.DYNAMICS)
        assert mean_delay(adapted.recorder, 240, 300) < (
            mean_delay(static.recorder, 240, 300)
        )

    def test_wasp_recovers_ratio(self):
        run = make_run(wasp())
        run.run(300, self.DYNAMICS)
        ratio = run.recorder.processing_ratio_series()
        assert float(np.mean(ratio[260:300])) > 0.97


class TestScaleDownAfterRecovery:
    """Section 8.4/8.5: once dynamics subside, WASP releases resources."""

    def test_extra_slots_returned(self):
        dynamics = DynamicsSpec(
            workload_schedule=Schedule(
                [(0.0, 1.0), (50.0, 2.0), (200.0, 1.0)]
            )
        )
        run = make_run(wasp())
        run.run(600, dynamics)
        kinds = [r.kind for r in run.manager.history]
        if ActionKind.SCALE_OUT in kinds or ActionKind.SCALE_UP in kinds:
            assert ActionKind.SCALE_DOWN in kinds
            extra = run.recorder.extra_slots_series()
            assert extra[-1] <= max(extra)


class TestFailureRecovery:
    """Section 8.6: total resource revocation for 60 s."""

    DYNAMICS = DynamicsSpec(
        failures=[FailureEvent(t_s=60.0, duration_s=60.0)]
    )

    def test_nothing_flows_during_failure(self):
        run = make_run(no_adapt())
        run.run(100, self.DYNAMICS)
        processed = [s.processed for s in run.recorder.samples[70:100]]
        assert sum(processed) == 0.0

    def test_wasp_drains_backlog_after_recovery(self):
        run = make_run(wasp(), query_factory=topk_topics)
        run.run(500, self.DYNAMICS)
        # Well after recovery the delay is back near baseline.
        late = mean_delay(run.recorder, 450, 500)
        baseline = mean_delay(run.recorder, 30, 60)
        assert late < 3 * baseline
        assert run.recorder.processed_fraction() == 1.0

    def test_wasp_recovers_faster_than_no_adapt(self):
        adapted = make_run(wasp(), query_factory=topk_topics)
        adapted.run(400, self.DYNAMICS)
        static = make_run(no_adapt(), query_factory=topk_topics)
        static.run(400, self.DYNAMICS)
        assert mean_delay(adapted.recorder, 300, 400) < (
            mean_delay(static.recorder, 300, 400)
        )

    def test_degrade_drops_during_recovery(self):
        run = make_run(degrade(), query_factory=topk_topics)
        run.run(300, self.DYNAMICS)
        assert run.recorder.processed_fraction() < 1.0


class TestFullSection84Timeline:
    """One full Figure 8/9 run at paper scale (slow but definitive)."""

    @pytest.mark.slow
    def test_reopt_handles_both_dynamics(self):
        run = make_run(wasp())
        run.run(1500, bottleneck_dynamics())
        recorder = run.recorder
        # Mean delay in every interval stays within 4x the baseline.
        baseline = mean_delay(recorder, 100, 300)
        for lo, hi in ((400, 600), (700, 900), (1000, 1200), (1300, 1500)):
            assert mean_delay(recorder, lo, hi) < 4 * baseline
        assert recorder.processed_fraction() == 1.0
        kinds = {r.kind for r in run.manager.history}
        assert kinds & {
            ActionKind.REASSIGN, ActionKind.SCALE_OUT, ActionKind.SCALE_UP,
        }

"""Checkpoint-interval vs recovery-cost (Section 5's localized snapshots).

Work processed since the last local checkpoint is lost with a failure and
replayed after recovery.  The replay window is bounded by the checkpoint
interval, so the interval becomes a live trade-off: frequent snapshots cost
(real systems') overhead, sparse snapshots cost recovery time.
"""

import numpy as np
import pytest

from repro.baselines.variants import no_adapt, wasp
from repro.config import WaspConfig
from repro.experiments.harness import DynamicsSpec, ExperimentRun, FailureEvent
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import ysb_advertising

FAILURE = DynamicsSpec(failures=[FailureEvent(t_s=100.0, duration_s=30.0)])


def make_run(variant, checkpoint_interval_s=30.0, seed=42):
    config = WaspConfig.paper_defaults().with_overrides(
        checkpoint_interval_s=checkpoint_interval_s
    )
    rngs = RngRegistry(seed)
    topo = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topo)
    return ExperimentRun(topo, query, variant, config=config, rngs=rngs)


class TestReplayInjection:
    def test_recovery_injects_replay_backlog(self):
        run = make_run(no_adapt())
        run.set_dynamics(FAILURE)
        run.run(99)
        # Snapshot the backlog just before the failure and just after
        # recovery: the replayed events appear on top of the queued ones.
        run.run(32)  # to t = 131; failure over at t = 130
        backlog_after = run.runtime.total_backlog()
        generated_during_failure = 30.0 * 8 * 10_000.0
        # Replay adds the un-checkpointed pre-failure work on top of the
        # externally accumulated events.
        assert backlog_after > 0.6 * generated_during_failure

    def test_failed_sites_keep_stale_snapshots(self):
        run = make_run(no_adapt())
        run.set_dynamics(FAILURE)
        run.run(160)
        # Every stateful stage still has a checkpoint record somewhere.
        for stage in run.runtime.plan.topological_stages():
            if stage.stateful:
                assert any(
                    run.checkpoints.record(stage.name, site)
                    for site in stage.sites()
                )

    def test_replayed_events_carry_old_ages(self):
        """Replay raises post-recovery delay above the no-replay floor."""
        run = make_run(no_adapt())
        run.set_dynamics(FAILURE)
        run.run(200)
        delay = run.recorder.delay_series()
        post = delay[140:170]
        post = post[~np.isnan(post)]
        # Replayed events were generated before t=100, so delays exceed
        # the failure duration.
        assert float(np.max(post)) > 30.0

    def test_eventually_drains(self):
        run = make_run(wasp())
        run.set_dynamics(FAILURE)
        run.run(500)
        assert run.runtime.total_backlog() < 1000.0
        assert run.recorder.processed_fraction() == 1.0


class TestIntervalTradeOff:
    def test_sparser_checkpoints_cost_more_recovery(self):
        """Replay volume grows with the checkpoint interval."""
        def replay_peak(interval_s):
            run = make_run(no_adapt(), checkpoint_interval_s=interval_s)
            run.set_dynamics(FAILURE)
            run.run(131)  # to t = 131 (single call from t = 0)
            return run.runtime.total_backlog()

        # Failure hits at t=100: a 7 s cadence has snapshotted at t=98
        # (2 s replay window), a 60 s cadence at t=60 (40 s window).
        frequent = replay_peak(7.0)
        sparse = replay_peak(60.0)
        assert sparse > frequent + 100_000.0

"""Straggler mitigation: the Section-1 dynamic the evaluation implies.

A straggling site keeps its slots but runs them several times slower; the
metric monitor sees the stage's processing rate fall below its expected
input, diagnosis classifies it compute-bound, and the policy adds capacity
or moves the work - no data is dropped.
"""

import numpy as np
import pytest

from repro.baselines.variants import no_adapt, wasp
from repro.errors import ConfigurationError, TopologyError
from repro.experiments.harness import (
    DynamicsSpec,
    ExperimentRun,
    StragglerEvent,
)
from repro.network.site import Site, SiteKind
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry
from repro.workloads.queries import ysb_advertising


def make_run(variant, seed=42):
    rngs = RngRegistry(seed)
    topo = paper_testbed(rngs.stream("topology"))
    query = ysb_advertising(topo)
    return ExperimentRun(topo, query, variant, rngs=rngs)


def mean_delay(recorder, lo, hi):
    series = recorder.delay_series()[lo:hi]
    series = series[~np.isnan(series)]
    return float(np.mean(series)) if len(series) else float("nan")


class TestSiteSlowdown:
    def test_slowdown_scales_effective_rate(self):
        site = Site("s", SiteKind.DATA_CENTER, 4, proc_rate_eps=40_000.0)
        site.set_slowdown(4.0)
        assert site.effective_proc_rate_eps == pytest.approx(10_000.0)

    def test_restore(self):
        site = Site("s", SiteKind.DATA_CENTER, 4)
        site.set_slowdown(4.0)
        site.set_slowdown(1.0)
        assert site.effective_proc_rate_eps == site.proc_rate_eps

    def test_speedup_rejected(self):
        site = Site("s", SiteKind.DATA_CENTER, 4)
        with pytest.raises(TopologyError):
            site.set_slowdown(0.5)

    def test_invalid_event_rejected(self):
        with pytest.raises(ConfigurationError):
            StragglerEvent(t_s=0.0, duration_s=10.0, site="x", slowdown=0.5)


class TestStragglerDriver:
    def test_slowdown_applied_and_lifted(self):
        run = make_run(no_adapt())
        victim = run.runtime.plan.stage("join{ads+campaigns}").sites()[0]
        run.set_dynamics(
            DynamicsSpec(
                stragglers=[
                    StragglerEvent(
                        t_s=5.0, duration_s=10.0, site=victim, slowdown=8.0
                    )
                ]
            )
        )
        run.run(10)
        assert run.topology.site(victim).slowdown == 8.0
        run.run(10)  # to t = 20 > 15
        assert run.topology.site(victim).slowdown == 1.0

    def test_overlapping_events_take_worst(self):
        run = make_run(no_adapt())
        victim = run.topology.site_names[0]
        run.set_dynamics(
            DynamicsSpec(
                stragglers=[
                    StragglerEvent(t_s=0.0, duration_s=20.0, site=victim,
                                   slowdown=2.0),
                    StragglerEvent(t_s=5.0, duration_s=5.0, site=victim,
                                   slowdown=6.0),
                ]
            )
        )
        run.run(8)
        assert run.topology.site(victim).slowdown == 6.0


class TestStragglerMitigation:
    def straggler_dynamics(self, run, slowdown=8.0):
        victim = run.runtime.plan.stage("join{ads+campaigns}").sites()[0]
        return DynamicsSpec(
            stragglers=[
                StragglerEvent(
                    t_s=60.0, duration_s=540.0, site=victim,
                    slowdown=slowdown,
                )
            ]
        )

    def test_no_adapt_suffers(self):
        run = make_run(no_adapt())
        run.run(400, self.straggler_dynamics(run))
        baseline = mean_delay(run.recorder, 30, 60)
        straggling = mean_delay(run.recorder, 300, 400)
        assert straggling > 3 * baseline

    def test_wasp_mitigates(self):
        run = make_run(wasp())
        run.run(400, self.straggler_dynamics(run))
        baseline = mean_delay(run.recorder, 30, 60)
        late = mean_delay(run.recorder, 300, 400)
        assert late < 3 * baseline
        assert run.manager.history  # the controller acted
        assert run.recorder.processed_fraction() == 1.0

    def test_wasp_beats_no_adapt_under_straggler(self):
        adapted = make_run(wasp())
        adapted.run(400, self.straggler_dynamics(adapted))
        static = make_run(no_adapt())
        static.run(400, self.straggler_dynamics(static))
        assert mean_delay(adapted.recorder, 300, 400) < (
            mean_delay(static.recorder, 300, 400)
        )

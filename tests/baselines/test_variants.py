"""Tests for repro.baselines.variants."""

import pytest

from repro.baselines.variants import (
    ALL_NAMED,
    VariantSpec,
    degrade,
    no_adapt,
    reassign_only,
    replan_only,
    scale_only,
    wasp,
)
from repro.core.migration import MigrationStrategy
from repro.errors import ConfigurationError


class TestSpecs:
    def test_no_adapt_neither_adapts_nor_degrades(self):
        spec = no_adapt()
        assert not spec.adapts
        assert spec.degrade_slo_s is None

    def test_degrade_default_slo_matches_paper(self):
        assert degrade().degrade_slo_s == 10.0

    def test_degrade_never_adapts(self):
        assert not degrade().adapts

    def test_degrade_with_adaptation_rejected(self):
        with pytest.raises(ConfigurationError):
            VariantSpec(name="x", adapts=True, degrade_slo_s=10.0)

    def test_invalid_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            degrade(slo_s=0.0)

    def test_reassign_only_mode(self):
        spec = reassign_only()
        assert spec.mode.allow_reassign
        assert not spec.mode.allow_scale
        assert not spec.mode.allow_replan
        assert not spec.replanning

    def test_scale_only_mode(self):
        spec = scale_only()
        assert spec.mode.allow_reassign and spec.mode.allow_scale
        assert not spec.mode.allow_replan

    def test_replan_only_mode(self):
        spec = replan_only()
        assert spec.mode.allow_replan
        assert not spec.mode.allow_scale

    def test_wasp_enables_everything(self):
        spec = wasp()
        assert spec.mode.allow_reassign
        assert spec.mode.allow_scale
        assert spec.mode.allow_replan
        assert spec.migration_strategy is MigrationStrategy.WASP

    def test_wasp_migration_variants_named(self):
        assert wasp(MigrationStrategy.RANDOM).name == "WASP/random"
        assert wasp(MigrationStrategy.NONE).name == "WASP/none"
        assert wasp().name == "WASP"

    def test_all_named_registry(self):
        assert {"No Adapt", "Degrade", "Re-assign", "Scale", "Re-plan",
                "WASP"} <= set(ALL_NAMED)

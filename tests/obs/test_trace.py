"""Tests for repro.obs.trace - span and round reconstruction."""

import pytest

from repro.errors import ObsError
from repro.obs.events import (
    Abandoned,
    Apply,
    AttemptStart,
    ChaosFault,
    Commit,
    Decide,
    Diagnose,
    EventBus,
    FallbackHop,
    MigrateEnd,
    MigrateStart,
    MigrateTransfer,
    Restore,
    Rollback,
    RoundEnd,
    RoundStart,
    Snapshot,
    Validate,
    Verify,
)
from repro.obs.sinks import RingBufferSink
from repro.obs.trace import build_spans, reconstruct, render_timeline


def diagnose(t, stage, health="healthy"):
    return Diagnose(
        t,
        stage=stage,
        health=health,
        utilization=0.9,
        expected_input_eps=100.0,
        capacity_eps=80.0,
        backlog=10.0,
        backlog_growth=2.0,
        slow_sites=[],
    )


def emit_attempt(bus, t, stage, label, action="re-assign", reason="backlog"):
    bus.emit(AttemptStart(t, stage=stage, attempt=label, action=action, reason=reason))
    bus.emit(Snapshot(t, stage=stage))
    bus.emit(Validate(t, stage=stage, action=action))
    bus.emit(Apply(t, stage=stage, action=action, transition_s=2.0))


def fallback_round(bus, t=40.0, stage="agg"):
    """Emit a realistic round: primary rolls back, retry-1 migrates + commits."""
    with bus.span("adaptation-round", t):
        bus.emit(RoundStart(t, round=1, stages=2))
        bus.emit(diagnose(t, stage, health="compute_bound"))
        bus.emit(Decide(t, stage=stage, action="re-assign", reason="backlog"))
        emit_attempt(bus, t, stage, "primary")
        bus.emit(Rollback(t, stage=stage, attempt="primary", error="site lost"))
        bus.emit(FallbackHop(t, stage=stage, from_attempt="primary", to_attempt="retry-1"))
        emit_attempt(bus, t, stage, "retry-1")
        bus.emit(Verify(t, stage=stage))
        with bus.span("migration", t):
            bus.emit(MigrateStart(t, stage=stage, strategy="direct", transfers=2, total_mb=60.0))
            bus.emit(
                MigrateTransfer(t, stage=stage, from_site="dc-a", to_site="dc-b",
                                size_mb=40.0, bytes=4e7, bandwidth_mbps=100.0,
                                duration_s=3.2)
            )
            bus.emit(
                MigrateTransfer(t, stage=stage, from_site="edge-1", to_site="dc-b",
                                size_mb=20.0, bytes=2e7, bandwidth_mbps=50.0,
                                duration_s=3.4)
            )
            bus.emit(MigrateEnd(t, stage=stage, transition_s=3.4, abandoned_mb=0.0))
        bus.emit(
            Commit(t, stage=stage, attempt="retry-1", action="re-assign",
                   reason="backlog", transition_s=3.4)
        )
        bus.emit(RoundEnd(t, round=1, decided=1, executed=1))


def capture(emitter, *args, **kwargs):
    bus = EventBus()
    sink = bus.attach(RingBufferSink())
    emitter(bus, *args, **kwargs)
    return sink.records


class TestBuildSpans:
    def test_nesting_and_durations(self):
        records = capture(fallback_round)
        roots = build_spans(records)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "adaptation-round"
        assert [c.name for c in root.children] == ["migration"]
        assert root.duration_s == 0.0

    def test_unclosed_span_has_no_end(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        handle = bus.span("dangling", 5.0)
        handle.__enter__()
        roots = build_spans(sink.records)
        assert roots[0].t_end_s is None
        assert roots[0].duration_s is None


class TestReconstruct:
    def test_round_with_fallback_chain(self):
        records = capture(fallback_round)
        summary = reconstruct(records)
        assert summary.records == len(records)
        assert len(summary.rounds) == 1
        rnd = summary.rounds[0]
        assert rnd.round == 1
        assert rnd.executed == 1
        assert len(rnd.diagnoses) == 1
        assert len(rnd.decisions) == 1
        assert len(rnd.actions) == 1

        action = rnd.actions[0]
        assert action.stage == "agg"
        assert action.hops == [("primary", "retry-1")]
        assert [a.label for a in action.attempts] == ["primary", "retry-1"]
        assert [a.outcome for a in action.attempts] == ["rolled-back", "committed"]
        assert action.rolled_back[0].error == "site lost"

        committed = action.committed
        assert committed is not None
        assert committed.label == "retry-1"
        assert committed.strategy == "direct"
        assert committed.transition_s == pytest.approx(3.4)
        assert len(committed.transfers) == 2
        assert committed.migration_mb == pytest.approx(60.0)
        assert committed.migration_s == pytest.approx(3.4)
        assert sum(t.bytes for t in committed.transfers) == pytest.approx(6e7)

    def test_orphan_action_outside_round(self):
        def emitter(bus):
            emit_attempt(bus, 10.0, "agg", "primary")
            bus.emit(Verify(10.0, stage="agg"))
            bus.emit(
                Commit(10.0, stage="agg", attempt="primary", action="re-assign",
                       reason="operator move", transition_s=2.0)
            )

        summary = reconstruct(capture(emitter))
        assert summary.rounds == []
        assert len(summary.orphan_actions) == 1
        assert summary.orphan_actions[0].committed.label == "primary"

    def test_abandoned_action(self):
        def emitter(bus):
            emit_attempt(bus, 10.0, "agg", "primary")
            bus.emit(Rollback(10.0, stage="agg", attempt="primary", error="x"))
            bus.emit(FallbackHop(10.0, stage="agg", from_attempt="primary",
                                 to_attempt="abandon-state"))
            emit_attempt(bus, 10.0, "agg", "abandon-state")
            bus.emit(Rollback(10.0, stage="agg", attempt="abandon-state", error="y"))
            bus.emit(Abandoned(10.0, stage="agg", action="re-assign"))

        summary = reconstruct(capture(emitter))
        action = summary.orphan_actions[0]
        assert action.abandoned
        assert action.committed is None
        assert len(action.rolled_back) == 2

    def test_faults_and_restores_collected(self):
        def emitter(bus):
            bus.emit(ChaosFault(120.0, fault="site-crash", detail="edge-1", phase="apply"))
            bus.emit(Restore(165.0, stage="agg", site="edge-1", events=500.0,
                             replay_window_s=45.0))
            bus.emit(ChaosFault(165.0, fault="site-crash", detail="edge-1", phase="revert"))

        summary = reconstruct(capture(emitter))
        assert len(summary.faults) == 2
        assert len(summary.restores) == 1
        assert summary.t_min_s == pytest.approx(120.0)
        assert summary.t_max_s == pytest.approx(165.0)

    def test_validate_rejects_corrupt_stream(self):
        records = capture(fallback_round)
        records[3] = dict(records[3], kind="not-a-kind")
        with pytest.raises(ObsError, match="record 4"):
            reconstruct(records)
        # validate=False replays anyway.
        reconstruct(records, validate=False)

    def test_consecutive_primaries_are_separate_actions(self):
        def emitter(bus):
            for t in (10.0, 20.0):
                emit_attempt(bus, t, "agg", "primary")
                bus.emit(Verify(t, stage="agg"))
                bus.emit(
                    Commit(t, stage="agg", attempt="primary", action="re-assign",
                           reason="r", transition_s=1.0)
                )

        summary = reconstruct(capture(emitter))
        assert len(summary.orphan_actions) == 2


class TestRenderTimeline:
    def test_header_counts(self):
        records = capture(fallback_round)
        text = render_timeline(records)
        assert f"trace: {len(records)} events" in text
        assert "rounds: 1" in text
        assert "1 committed" in text
        assert "1 rolled-back attempts" in text

    def test_fallback_and_migration_rendered(self):
        text = render_timeline(capture(fallback_round))
        assert "retry-1" in text
        assert "committed" in text
        assert "migrated 60.0 MB" in text
        assert "site lost" in text

    def test_faults_rendered_in_time_order(self):
        def emitter(bus):
            fallback_round(bus, t=40.0)
            bus.emit(ChaosFault(120.0, fault="site-crash", detail="edge-1", phase="apply"))
            bus.emit(ChaosFault(165.0, fault="site-crash", detail="edge-1", phase="revert"))

        text = render_timeline(capture(emitter))
        lines = text.splitlines()
        idx_round = next(i for i, l in enumerate(lines) if "round 1" in l)
        idx_fault = next(i for i, l in enumerate(lines) if "fault site-crash" in l)
        idx_revert = next(i for i, l in enumerate(lines) if "fault-revert" in l)
        assert idx_round < idx_fault < idx_revert

"""Tests for repro.obs.sinks - ring buffer, JSONL, Prometheus textfile."""

import io
import json

import pytest

from repro.errors import ObsError
from repro.obs.events import (
    ChaosFault,
    Checkpoint,
    Commit,
    EventBus,
    MigrateEnd,
    MigrateTransfer,
    Rollback,
    RoundStart,
    WindowSnapshot,
)
from repro.obs.sinks import (
    JsonlSink,
    PrometheusTextfileSink,
    RingBufferSink,
    read_jsonl,
)


def emit_n(bus, n):
    for i in range(n):
        bus.emit(RoundStart(float(i), round=i, stages=1))


class TestRingBufferSink:
    def test_unbounded_by_default(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        emit_n(bus, 100)
        assert len(sink) == 100

    def test_capacity_keeps_most_recent(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink(capacity=3))
        emit_n(bus, 10)
        assert len(sink) == 3
        assert [r["round"] for r in sink.records] == [7, 8, 9]

    def test_invalid_capacity_raises(self):
        with pytest.raises(ObsError):
            RingBufferSink(capacity=0)

    def test_clear(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        emit_n(bus, 2)
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_round_trips_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        ring = bus.attach(RingBufferSink())
        sink = bus.attach(JsonlSink(path))
        emit_n(bus, 3)
        sink.close()
        assert sink.written == 3
        assert read_jsonl(path) == ring.records

    def test_preserves_field_order_on_disk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sink = bus.attach(JsonlSink(path))
        emit_n(bus, 1)
        sink.close()
        line = path.read_text().splitlines()[0]
        keys = list(json.loads(line))
        assert keys[:6] == ["schema", "seq", "t_s", "kind", "span", "parent"]
        # Compact separators: no spaces after ':' or ','.
        assert ": " not in line and ", " not in line

    def test_same_emissions_are_byte_identical(self, tmp_path):
        def one(path):
            bus = EventBus()
            sink = bus.attach(JsonlSink(path))
            emit_n(bus, 5)
            sink.close()
            return path.read_bytes()

        assert one(tmp_path / "a.jsonl") == one(tmp_path / "b.jsonl")

    def test_file_like_target_not_closed(self):
        buf = io.StringIO()
        with JsonlSink(buf) as sink:
            sink.write({"schema": "x", "kind": "y"})
        assert not buf.closed
        assert buf.getvalue().count("\n") == 1

    def test_context_manager_closes_owned_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"k": 1})
        assert read_jsonl(path) == [{"k": 1}]

    def test_read_jsonl_reports_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok":1}\n{not json\n')
        with pytest.raises(ObsError, match=r"bad\.jsonl:2"):
            read_jsonl(path)

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a":1}\n\n{"b":2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]


class TestPrometheusTextfileSink:
    def _bus(self, tmp_path):
        bus = EventBus()
        sink = bus.attach(PrometheusTextfileSink(tmp_path / "wasp.prom"))
        return bus, sink

    def test_window_gauges(self, tmp_path):
        bus, sink = self._bus(tmp_path)
        bus.emit(
            WindowSnapshot(
                40.0,
                t_start_s=0.0,
                t_end_s=40.0,
                offered_eps=120.0,
                mean_delay_s=0.5,
                stages={
                    "agg": {
                        "lambda_p": 100.0,
                        "lambda_hat": 110.0,
                        "utilization": 0.8,
                        "backlog": 12.0,
                        "backlog_growth": 1.0,
                    }
                },
                links={"edge-1->dc-oregon": {"inflow_eps": 50.0, "backlog": 3.0}},
            )
        )
        text = sink.render()
        assert 'wasp_stage_lambda_p_eps{stage="agg"} 100.0' in text
        assert 'wasp_stage_lambda_hat_eps{stage="agg"} 110.0' in text
        assert 'wasp_stage_utilization{stage="agg"} 0.8' in text
        assert 'wasp_stage_backlog_events{stage="agg"} 12.0' in text
        assert 'wasp_link_inflow_eps{link="edge-1->dc-oregon"} 50.0' in text
        assert "wasp_window_end_seconds 40.0" in text
        # Window events flush the textfile immediately.
        assert sink.path.read_text() == text

    def test_lifecycle_counters(self, tmp_path):
        bus, sink = self._bus(tmp_path)
        bus.emit(
            Commit(1.0, stage="agg", attempt="retry-1", action="re-assign",
                   reason="r", transition_s=2.0)
        )
        bus.emit(Rollback(1.0, stage="agg", attempt="primary", error="e"))
        bus.emit(ChaosFault(1.0, fault="site-crash", detail="d", phase="apply"))
        bus.emit(ChaosFault(2.0, fault="site-crash", detail="d", phase="revert"))
        bus.emit(
            MigrateTransfer(1.0, stage="agg", from_site="a", to_site="b",
                            size_mb=30.0, bytes=3e7, bandwidth_mbps=100.0,
                            duration_s=2.4)
        )
        bus.emit(MigrateEnd(1.0, stage="agg", transition_s=2.4, abandoned_mb=5.0))
        bus.emit(Checkpoint(1.0, records=3, total_mb=10.0, skipped_sites=[]))
        text = sink.render()
        assert 'wasp_adaptations_total{outcome="committed"} 1.0' in text
        assert 'wasp_adaptations_total{outcome="rolled-back"} 1.0' in text
        assert "wasp_migration_state_mb_total 30.0" in text
        assert "wasp_migration_transfers_total 1.0" in text
        assert "wasp_state_abandoned_mb_total 5.0" in text
        assert "wasp_checkpoint_rounds_total 1.0" in text
        assert 'wasp_chaos_faults_total{fault="site-crash"} 2.0' in text

    def test_help_and_type_lines(self, tmp_path):
        bus, sink = self._bus(tmp_path)
        bus.emit(
            Commit(1.0, stage="agg", attempt="primary", action="scale-up",
                   reason="r", transition_s=0.0)
        )
        text = sink.render()
        assert "# HELP wasp_adaptations_total" in text
        assert "# TYPE wasp_adaptations_total counter" in text

    def test_label_escaping(self, tmp_path):
        bus, sink = self._bus(tmp_path)
        bus.emit(ChaosFault(1.0, fault='we"ird\\fault', detail="", phase="apply"))
        text = sink.render()
        assert 'fault="we\\"ird\\\\fault"' in text

    def test_close_writes_file(self, tmp_path):
        bus, sink = self._bus(tmp_path)
        bus.emit(
            Commit(1.0, stage="agg", attempt="primary", action="scale-up",
                   reason="r", transition_s=0.0)
        )
        bus.close()
        assert "wasp_adaptations_total" in sink.path.read_text()

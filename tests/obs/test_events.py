"""Tests for repro.obs.events - the typed event bus."""

import pytest

from repro.errors import ObsError
from repro.obs.events import (
    ENVELOPE_FIELDS,
    EVENT_TYPES,
    SCHEMA,
    Commit,
    Diagnose,
    EventBus,
    MigrateTransfer,
    RoundStart,
    require_valid,
    validate_record,
)
from repro.obs.sinks import RingBufferSink


class TestZeroOverhead:
    def test_bus_is_falsy_without_sinks(self):
        bus = EventBus()
        assert not bus
        assert bus.enabled is False

    def test_bus_is_truthy_with_sink(self):
        bus = EventBus()
        bus.attach(RingBufferSink())
        assert bus
        assert bus.enabled is True

    def test_emit_without_sink_is_a_no_op(self):
        bus = EventBus()
        bus.emit(RoundStart(1.0, round=1, stages=3))
        sink = bus.attach(RingBufferSink())
        bus.emit(RoundStart(2.0, round=2, stages=3))
        # The unobserved emit left no trace: sequencing starts at 1.
        assert [r["seq"] for r in sink.records] == [1]

    def test_span_without_sink_yields_none(self):
        bus = EventBus()
        with bus.span("adaptation-round", 1.0) as span_id:
            assert span_id is None

    def test_detach_restores_falsiness(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        bus.detach(sink)
        assert not bus


class TestEnvelope:
    def test_record_field_order_is_envelope_then_payload(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        bus.emit(
            Diagnose(
                40.0,
                stage="agg",
                health="network_bound",
                utilization=0.9,
                expected_input_eps=100.0,
                capacity_eps=80.0,
                backlog=5.0,
                backlog_growth=1.0,
                slow_sites=[],
            )
        )
        record = sink.records[0]
        _, payload_fields = EVENT_TYPES["diagnose"]
        assert tuple(record) == ENVELOPE_FIELDS + payload_fields

    def test_seq_is_monotonic(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        for i in range(5):
            bus.emit(RoundStart(float(i), round=i, stages=1))
        assert [r["seq"] for r in sink.records] == [1, 2, 3, 4, 5]

    def test_schema_stamped(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        bus.emit(RoundStart(0.0, round=1, stages=1))
        assert sink.records[0]["schema"] == SCHEMA

    def test_identical_emissions_produce_identical_records(self):
        def one_run():
            bus = EventBus()
            sink = bus.attach(RingBufferSink())
            with bus.span("adaptation-round", 40.0):
                bus.emit(RoundStart(40.0, round=1, stages=2))
                bus.emit(
                    Commit(
                        40.0,
                        stage="agg",
                        attempt="primary",
                        action="re-assign",
                        reason="r",
                        transition_s=2.0,
                    )
                )
            return sink.records

        assert one_run() == one_run()


class TestSpans:
    def test_span_ids_nest_via_parent(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        with bus.span("adaptation-round", 40.0) as outer:
            bus.emit(RoundStart(40.0, round=1, stages=1))
            with bus.span("migration", 40.0) as inner:
                bus.emit(
                    MigrateTransfer(
                        40.0,
                        stage="agg",
                        from_site="a",
                        to_site="b",
                        size_mb=1.0,
                        bytes=1e6,
                        bandwidth_mbps=100.0,
                        duration_s=0.08,
                    )
                )
        records = {r["kind"]: r for r in sink.records}
        assert records["round.start"]["span"] == outer
        assert records["round.start"]["parent"] is None
        assert records["migrate.transfer"]["span"] == inner
        assert records["migrate.transfer"]["parent"] == outer
        starts = [r for r in sink.records if r["kind"] == "span.start"]
        assert [s["name"] for s in starts] == ["adaptation-round", "migration"]

    def test_span_ids_are_deterministic(self):
        bus = EventBus()
        bus.attach(RingBufferSink())
        with bus.span("a", 0.0) as first:
            pass
        with bus.span("b", 1.0) as second:
            pass
        assert (first, second) == ("s1", "s2")

    def test_span_at_records_real_duration(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        with bus.span_at("migration", 10.0) as handle:
            handle.set_end(17.5)
        end = [r for r in sink.records if r["kind"] == "span.end"][0]
        assert end["duration_s"] == pytest.approx(7.5)
        assert end["t_s"] == pytest.approx(17.5)

    def test_close_detaches_all_sinks(self):
        bus = EventBus()
        bus.attach(RingBufferSink())
        bus.attach(RingBufferSink())
        bus.close()
        assert not bus


class TestValidation:
    def _valid_record(self):
        bus = EventBus()
        sink = bus.attach(RingBufferSink())
        bus.emit(RoundStart(1.0, round=1, stages=2))
        return sink.records[0]

    def test_emitted_record_is_valid(self):
        assert validate_record(self._valid_record()) == []

    def test_unknown_kind_rejected(self):
        record = dict(self._valid_record(), kind="nope")
        assert any("unknown event kind" in p for p in validate_record(record))

    def test_missing_payload_field_rejected(self):
        record = self._valid_record()
        del record["stages"]
        assert any("missing field" in p for p in validate_record(record))

    def test_extra_payload_field_rejected(self):
        record = dict(self._valid_record(), bogus=1)
        assert any("unexpected field" in p for p in validate_record(record))

    def test_wrong_schema_rejected(self):
        record = dict(self._valid_record(), schema="v0")
        assert any("schema" in p for p in validate_record(record))

    def test_non_dict_rejected(self):
        assert validate_record(["not", "a", "dict"])

    def test_require_valid_raises_obs_error(self):
        with pytest.raises(ObsError):
            require_valid({"schema": SCHEMA, "kind": "nope"})

    def test_require_valid_returns_record(self):
        record = self._valid_record()
        assert require_valid(record) is record

    def test_every_registered_kind_has_payload_fields(self):
        for kind, (cls, fields) in EVENT_TYPES.items():
            assert cls.kind == kind
            assert "t_s" not in fields

"""Detection tests for the fuzz invariant checker.

A checker that never fires is worthless, and the shipped engine is
(deliberately) violation-free, so each test here *injects* one specific
defect - a mass leak, a negative parcel, an over-committed site, a
suboptimal migration mapping, a scale commit outside the Section-4.2
bound - and asserts the matching invariant class, and only it, fires.
A clean-run test pins the flip side: no injected defect, no violations,
with the per-tick checks demonstrably exercised.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.core.diagnosis import Health, StageDiagnosis
from repro.engine.metrics import MetricsWindow
from repro.engine.queues import FluidQueue, Parcel
from repro.fuzz.campaign import run_scenario
from repro.fuzz.generate import build_run, generate_scenario
from repro.fuzz.invariants import InvariantChecker


def make_run(seed=1, *, duration_s=None, variant=None, run_for=None):
    """Build a checked run from a generated spec, optionally pre-stepped."""
    spec = generate_scenario(seed)
    if duration_s is not None:
        spec = dataclasses.replace(spec, duration_s=duration_s)
    if variant is not None:
        spec = dataclasses.replace(spec, variant=variant)
    run, dynamics = build_run(spec)
    checker = InvariantChecker()
    run.attach_checker(checker)
    if run_for is not None:
        run.run(run_for, dynamics)
    return run, checker, dynamics


class TestCleanRun:
    def test_no_violations_and_checks_exercised(self):
        run, checker, dynamics = make_run(seed=1, duration_s=60.0)
        run.run(60.0, dynamics)
        assert checker.violations == []
        assert checker.ticks_checked >= 50
        for invariant in (
            "conservation",
            "queue-nonnegative",
            "slot-feasibility",
            "full-deployment",
            "state-nonnegative",
        ):
            assert checker.checks.get(invariant, 0) > 0, invariant


class TestPerTickDetection:
    def test_conservation_catches_wan_mass_leak(self, monkeypatch):
        """Shave 10% off every WAN arrival: the per-stage ledger must
        notice mass vanishing between emission and enqueue."""
        original = FluidQueue.push_aged

        def leaky(self, parcels, extra_age_s):
            original(
                self,
                [Parcel(p.count * 0.9, p.gen_time_s) for p in parcels],
                extra_age_s,
            )

        monkeypatch.setattr(FluidQueue, "push_aged", leaky)
        spec = dataclasses.replace(generate_scenario(0), duration_s=60.0)
        result = run_scenario(spec, verify_digest=False)
        assert any(v.invariant == "conservation" for v in result.violations)

    def test_queue_nonnegative_catches_negative_parcel(self):
        run, checker, _ = make_run(seed=1, run_for=5.0)
        _table, _key, queue = next(iter(run.runtime.iter_queues()))
        queue._parcels.append(Parcel(-5.0, 0.0))
        checker._check_nonnegative(run.runtime.now_s)
        assert checker.counts().get("queue-nonnegative", 0) >= 1

    def test_slot_feasibility_catches_overcommit(self):
        run, checker, _ = make_run(seed=1, run_for=5.0)
        placed: dict[str, int] = {}
        for stage in run.runtime.plan.stages.values():
            for site, count in stage.placement().items():
                placed[site] = placed.get(site, 0) + count
        victim = next(s for s, n in placed.items() if n > 0)
        run.topology.site(victim).force_used_slots(0)
        checker.on_step_end()
        assert checker.counts().get("slot-feasibility", 0) >= 1

    def test_full_deployment_catches_emptied_stage(self):
        run, checker, _ = make_run(seed=1, run_for=5.0)
        stage = next(iter(run.runtime.plan.stages.values()))
        stage.set_tasks([])
        checker.on_step_end()
        assert checker.counts().get("full-deployment", 0) >= 1

    def test_state_nonnegative_catches_negative_partition(self):
        run, checker, _ = make_run(seed=1, run_for=5.0)
        parts = [
            part
            for name in run.state_store.stage_names()
            for part in run.state_store.partitions(name)
        ]
        assert parts, "seed 1 should deploy stateful operators"
        parts[0].size_mb = -1.0
        checker.on_step_end()
        assert checker.counts().get("state-nonnegative", 0) >= 1


class TestRollbackDigest:
    def test_faithful_rollback_passes_and_mutation_fails(self):
        run, checker, _ = make_run(seed=1, run_for=5.0)
        now = run.runtime.now_s
        rollback = {
            "kind": "rollback",
            "t_s": now,
            "stage": "stage",
            "attempt": "primary",
        }
        checker.write({"kind": "snapshot"})
        checker.write(rollback)
        assert "rollback-digest" not in checker.counts()
        checker.write({"kind": "snapshot"})
        _table, _key, queue = next(iter(run.runtime.iter_queues()))
        queue.push(123.0, now)  # "rollback" that fails to restore a queue
        checker.write(rollback)
        assert checker.counts().get("rollback-digest", 0) == 1
        assert checker.checks.get("rollback-digest", 0) == 2


class TestMigrationDetection:
    @staticmethod
    def _feed(checker, transfers, *, stage, transition_s):
        checker.write({"kind": "attempt.start", "attempt": "primary"})
        checker.write({"kind": "migrate.start", "strategy": "wasp"})
        for rec in transfers:
            checker.write({"kind": "migrate.transfer", **rec})
        checker.write(
            {
                "kind": "migrate.end",
                "t_s": 5.0,
                "stage": stage,
                "transition_s": transition_s,
            }
        )

    def test_arithmetic_catches_bad_duration_and_transition(self):
        checker = InvariantChecker()  # arithmetic needs no bound run
        transfer = {
            "from_site": "a",
            "to_site": "b",
            "size_mb": 8.0,
            "bandwidth_mbps": 8.0,
            "duration_s": 999.0,  # truth: 8 MB * 8 / 8 Mbps = 8 s
        }
        self._feed(checker, [transfer], stage="s", transition_s=999.0)
        assert checker.counts().get("migration-arithmetic", 0) == 1
        checker = InvariantChecker()
        self._feed(
            checker,
            [dict(transfer, duration_s=8.0)],
            stage="s",
            transition_s=1.0,  # != max(durations)
        )
        assert checker.counts().get("migration-arithmetic", 0) == 1
        checker = InvariantChecker()
        self._feed(
            checker,
            [dict(transfer, duration_s=8.0)],
            stage="s",
            transition_s=8.0,
        )
        assert checker.counts() == {}

    def _find_swap_quad(self, bandwidth, names):
        """Sites A,B,C,D where mapping A->D, B->C beats A->C, B->D by 2x."""
        for quad in itertools.permutations(names, 4):
            a, b, c, d = quad
            bws = [bandwidth(x, y) for x, y in
                   ((a, c), (b, d), (a, d), (b, c))]
            if any(bw <= 0 for bw in bws):
                continue
            observed = max(80.0 / bws[0], 80.0 / bws[1])
            swapped = max(80.0 / bws[2], 80.0 / bws[3])
            if swapped < observed * 0.5:
                return quad
        return None

    def test_minmax_catches_suboptimal_mapping(self):
        run, checker, _ = make_run(seed=1, variant="WASP", run_for=5.0)
        bandwidth = run.manager.migration_bandwidth
        quad = self._find_swap_quad(
            bandwidth, [site.name for site in run.topology]
        )
        assert quad is not None, "mesh should contain an improvable mapping"
        a, b, c, d = quad
        stage = next(iter(run.runtime.plan.stages))

        def transfer(src, dst):
            bw = bandwidth(src, dst)
            return {
                "from_site": src,
                "to_site": dst,
                "size_mb": 10.0,
                "bandwidth_mbps": bw,
                "duration_s": 80.0 / bw,
            }

        commit = {
            "kind": "commit",
            "t_s": 5.0,
            "stage": stage,
            "attempt": "primary",
            "action": "re-assign",
            "reason": "degraded placement",
        }
        # Suboptimal mapping: permuting the destinations halves the makespan.
        bad = [transfer(a, c), transfer(b, d)]
        self._feed(
            checker, bad, stage=stage,
            transition_s=max(r["duration_s"] for r in bad),
        )
        checker.write(commit)
        counts = checker.counts()
        assert counts.get("migration-minmax", 0) == 1
        assert "migration-arithmetic" not in counts
        # The permuted mapping is minmax-optimal: no violation.
        checker = InvariantChecker()
        checker.bind(run)
        good = [transfer(a, d), transfer(b, c)]
        self._feed(
            checker, good, stage=stage,
            transition_s=max(r["duration_s"] for r in good),
        )
        checker.write(commit)
        assert "migration-minmax" not in checker.counts()
        assert checker.checks.get("migration-minmax", 0) == 1


class TestCommitDetection:
    def test_scale_law_catches_noop_scale_up(self):
        run, checker, _ = make_run(seed=1, variant="WASP", run_for=5.0)
        name = next(iter(run.runtime.plan.stages))
        run.manager.last_diagnoses = {
            name: StageDiagnosis(
                stage=name,
                health=Health.COMPUTE_BOUND,
                expected_input_eps=100.0,
                processing_capacity_eps=1000.0,
                utilization=0.1,
                input_backlog=0.0,
                input_backlog_growth=0.0,
            )
        }
        checker.write({"kind": "round.start"})
        # A committed "scale up" that leaves parallelism unchanged violates
        # the strict-growth side of the Section-4.2 law.
        checker.write(
            {
                "kind": "commit",
                "t_s": 5.0,
                "stage": name,
                "attempt": "primary",
                "action": "scale up",
                "reason": "compute bottleneck",
            }
        )
        assert checker.counts().get("scale-law", 0) == 1
        assert checker.checks.get("scale-law", 0) == 1

    def test_alpha_cap_catches_overloaded_links(self):
        run, checker, _ = make_run(seed=1, variant="WASP", run_for=5.0)
        plan = run.runtime.plan
        # A window claiming 1e9 eps makes every WAN flow exceed alpha * B,
        # so the first network-bottleneck commit on a stage with a remote
        # upstream must fire.
        run.manager.last_window = MetricsWindow(
            t_start_s=0.0,
            t_end_s=5.0,
            offered_eps=1e9,
            source_generation_eps={name: 1e9 for name in plan.stages},
            stages={},
            sink_source_equiv_eps=0.0,
            mean_delay_s=0.0,
        )
        for name in plan.stages:
            checker.write({"kind": "round.start"})
            checker.write(
                {
                    "kind": "commit",
                    "t_s": 5.0,
                    "stage": name,
                    "attempt": "primary",
                    "action": "re-assign",
                    "reason": "network bottleneck: fuzzed",
                }
            )
            if checker.counts().get("alpha-cap"):
                break
        assert checker.counts().get("alpha-cap", 0) >= 1
        assert checker.checks.get("alpha-cap", 0) >= 1

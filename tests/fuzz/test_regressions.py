"""Pinned fuzz fixtures: every invariant class stays green and exercised.

Each JSON fixture under ``fixtures/`` is a shrunk scenario (see
``regen_fixtures.py``) pinned because it *exercises* one invariant class -
the checker demonstrably evaluates that invariant at least once - while
staying violation-free.  Replaying them asserts both halves: the shipped
engine still satisfies every invariant on these scenarios, and the
checker's scoped gates still reach each check (a refactor that silently
stops a check from ever firing fails here, not in production).

Regenerate after intentional engine-behavior changes with
``PYTHONPATH=src python tests/fuzz/regen_fixtures.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz.campaign import load_artifact, run_scenario
from repro.fuzz.invariants import INVARIANTS

FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.json"))


def test_fixture_set_is_complete():
    """One fixture per pinnable invariant class.

    ``replay-digest`` and ``crash`` have no clean fixture by construction
    (they only exist as violations), but every checker-evaluated class
    must be pinned.
    """
    pinned = {path.stem for path in FIXTURES}
    expected = set(INVARIANTS) - {"replay-digest", "crash"}
    assert pinned == expected


@pytest.mark.parametrize(
    "path", FIXTURES, ids=[path.stem for path in FIXTURES]
)
def test_fixture_replays_clean_and_exercised(path):
    spec, payload = load_artifact(path)
    invariant = payload["invariant"]
    assert invariant == path.stem
    result = run_scenario(spec)  # includes the digest-determinism replay
    assert result.ok, (
        f"pinned scenario now violates invariants: "
        f"{[v.to_dict() for v in result.violations]}"
    )
    assert result.checks.get(invariant, 0) > 0, (
        f"checker no longer exercises {invariant!r} on its pinned scenario"
    )


def test_fixtures_are_normalized_json():
    """Artifacts stay byte-stable under the writer's canonical formatting,
    so regeneration produces clean diffs."""
    for path in FIXTURES:
        payload = json.loads(path.read_text())
        canonical = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert path.read_text() == canonical, path.name

"""Tests for the seeded scenario generator."""

import dataclasses

import pytest

from repro.baselines.variants import ALL_NAMED
from repro.chaos.injector import ChaosInjector
from repro.fuzz.generate import (
    FAULT_KINDS,
    QUERY_NAMES,
    ScenarioSpec,
    build_run,
    build_topology,
    generate_scenario,
)


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert (
            generate_scenario(17).to_json() == generate_scenario(17).to_json()
        )

    def test_different_seeds_differ(self):
        seen = {generate_scenario(seed).to_json() for seed in range(8)}
        assert len(seen) == 8

    def test_json_round_trip(self):
        spec = generate_scenario(3)
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestSpecValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_specs_are_well_formed(self, seed):
        spec = generate_scenario(seed)
        kinds = {site.kind for site in spec.sites}
        assert {"edge", "dc"} <= kinds
        names = spec.site_names
        assert len(set(names)) == len(names)
        # Full directed mesh so any placement has a defined link.
        pairs = {(link.src, link.dst) for link in spec.links}
        expected = {(a, b) for a in names for b in names if a != b}
        assert pairs == expected
        assert all(link.bandwidth_mbps > 0 for link in spec.links)
        assert spec.query in QUERY_NAMES
        assert spec.variant in ALL_NAMED
        for fault in spec.faults:
            assert fault.kind in FAULT_KINDS
            assert 10.0 <= fault.at_s <= spec.duration_s - 30.0
        assert list(spec.faults) == sorted(
            spec.faults, key=lambda f: (f.at_s, f.kind)
        )

    def test_fault_sites_exist(self):
        for seed in range(6):
            spec = generate_scenario(seed)
            names = set(spec.site_names)
            for fault in spec.faults:
                for key in ("site", "src", "dst"):
                    value = fault.params.get(key)
                    if value is not None:
                        assert value in names


class TestMaterialization:
    def test_build_topology_matches_spec(self):
        spec = generate_scenario(2)
        topology = build_topology(spec)
        assert sorted(s.name for s in topology) == sorted(spec.site_names)
        for link in spec.links[:10]:
            assert topology.bandwidth_mbps(link.src, link.dst) == (
                pytest.approx(link.bandwidth_mbps)
            )

    def test_build_run_wires_chaos_iff_faults(self):
        with_faults = next(
            generate_scenario(s) for s in range(20)
            if generate_scenario(s).faults
        )
        run, _dynamics = build_run(with_faults)
        assert isinstance(run._chaos, ChaosInjector)
        without = dataclasses.replace(with_faults, faults=())
        run2, _ = build_run(without)
        assert run2._chaos is None

    def test_build_run_smoke_steps(self):
        spec = generate_scenario(4)
        run, dynamics = build_run(spec)
        run.run(10.0, dynamics)
        assert run.runtime.now_s == pytest.approx(10.0)

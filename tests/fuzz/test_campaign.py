"""Tests for campaign sharding, crash folding, shrinking and artifacts.

Scenario runs are shortened by patching the campaign's view of
``generate_scenario`` to truncate durations - the generator itself is
untouched, and worker processes inherit the patch via fork.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.engine.queues import FluidQueue, Parcel
from repro.fuzz import campaign
from repro.fuzz.campaign import (
    load_artifact,
    run_campaign,
    run_scenario,
    shrink_scenario,
    write_artifact,
)
from repro.fuzz.generate import generate_scenario
from repro.fuzz.invariants import Violation


def short_scenario(seed, duration_s=40.0):
    return dataclasses.replace(
        generate_scenario(seed), duration_s=duration_s
    )


@pytest.fixture
def short_scenarios(monkeypatch):
    monkeypatch.setattr(campaign, "generate_scenario", short_scenario)


class TestCampaign:
    def test_report_independent_of_job_count(self, short_scenarios):
        serial = run_campaign(2, jobs=1)
        sharded = run_campaign(2, jobs=2)
        assert serial.to_json() == sharded.to_json()
        assert serial.ok
        assert serial.totals() == {}
        assert serial.checks().get("conservation", 0) > 0
        payload = json.loads(serial.to_json())
        assert payload["schema"] == campaign.REPORT_SCHEMA
        assert payload["num_failing"] == 0
        assert [r["seed"] for r in payload["results"]] == [0, 1]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            run_campaign(0)
        with pytest.raises(ConfigurationError):
            run_campaign(1, jobs=0)

    def test_generation_crash_folds_into_report(self, monkeypatch):
        def boom(seed):
            raise ValueError("generator exploded")

        monkeypatch.setattr(campaign, "generate_scenario", boom)
        report = run_campaign(1)
        assert not report.ok
        assert report.totals() == {"crash": 1}
        (result,) = report.results
        assert "generator exploded" in result.violations[0].detail

    def test_run_crash_folds_into_result(self, monkeypatch):
        def boom(spec):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(campaign, "build_run", boom)
        result = run_scenario(short_scenario(0))
        assert result.invariants_hit() == ["crash"]
        assert "engine exploded" in result.violations[0].detail

    def test_digest_mismatch_becomes_replay_violation(self, monkeypatch):
        digests = iter(["digest-one", "digest-two"])
        monkeypatch.setattr(
            campaign, "recorder_digest", lambda recorder: next(digests)
        )
        result = run_scenario(short_scenario(0))
        assert "replay-digest" in result.invariants_hit()


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        spec = generate_scenario(5)
        violations = [Violation("conservation", 12.0, "leaked 3 events")]
        path = write_artifact(tmp_path / "repro.json", spec, violations)
        loaded_spec, payload = load_artifact(path)
        assert loaded_spec == spec
        assert payload["invariant"] == "conservation"
        assert payload["violations"][0]["t_s"] == 12.0

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "not-a-repro.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ConfigurationError):
            load_artifact(path)


class TestShrinking:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            shrink_scenario(generate_scenario(0), "conservation", mode="no")

    def test_rejects_non_reproducing_spec(self):
        with pytest.raises(ConfigurationError):
            shrink_scenario(short_scenario(1), "conservation", max_evals=1)

    def test_shrinks_leaky_repro(self, monkeypatch):
        original = FluidQueue.push_aged

        def leaky(self, parcels, extra_age_s):
            original(
                self,
                [Parcel(p.count * 0.9, p.gen_time_s) for p in parcels],
                extra_age_s,
            )

        monkeypatch.setattr(FluidQueue, "push_aged", leaky)
        spec = short_scenario(0, duration_s=80.0)
        shrunk, violations = shrink_scenario(
            spec, "conservation", max_evals=4
        )
        assert violations
        assert all(v.invariant == "conservation" for v in violations)
        # The very first candidate (duration truncation) must be accepted:
        # the leak fires from the first WAN crossing onward.
        assert shrunk.duration_s < spec.duration_s

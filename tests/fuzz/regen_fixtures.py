"""Regenerate the pinned fuzz regression fixtures.

Each fixture under ``tests/fuzz/fixtures/`` pins the smallest scenario
(found by exercises-mode shrinking) that still *evaluates* one invariant
class while staying violation-free.  ``test_regressions.py`` replays every
fixture and asserts both properties, so a regression in either the engine
or the checker's scoping trips the suite.

Shipped code is violation-free, which is why the fixtures pin *exercised*
rather than *violated* invariants; a campaign that does find a violation
writes violates-mode repros via ``python -m repro fuzz --artifact-dir``
and those should be pinned here too.

Run from the repo root (takes a few minutes; not part of the test suite)::

    PYTHONPATH=src python tests/fuzz/regen_fixtures.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.fuzz import generate_scenario, shrink_scenario, write_artifact

FIXTURE_DIR = Path(__file__).parent / "fixtures"

#: invariant class -> campaign seed known to exercise it (base seed 0).
#: Per-tick invariants fire in every scenario; the commit-scoped ones need
#: seeds whose runs commit the matching adaptation kinds.
FIXTURE_SEEDS = {
    "conservation": 1,
    "queue-nonnegative": 1,
    "state-nonnegative": 1,
    "slot-feasibility": 1,
    "full-deployment": 1,
    "alpha-cap": 0,
    "scale-law": 7,
    "migration-arithmetic": 7,
    "migration-minmax": 8,
    "rollback-digest": 19,
}


def main() -> int:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    shrunk_cache: dict[int, object] = {}
    for invariant, seed in FIXTURE_SEEDS.items():
        per_tick = invariant in (
            "conservation",
            "queue-nonnegative",
            "state-nonnegative",
            "slot-feasibility",
            "full-deployment",
        )
        # Per-tick invariants are exercised by any clean run, so one shrunk
        # spec per seed serves them all.
        cache_key = seed if per_tick else None
        if cache_key is not None and cache_key in shrunk_cache:
            spec = shrunk_cache[cache_key]
        else:
            print(f"shrinking seed {seed} for {invariant} ...", flush=True)
            spec, _ = shrink_scenario(
                generate_scenario(seed),
                invariant if not per_tick else "conservation",
                mode="exercises",
                max_evals=12,
            )
            if cache_key is not None:
                shrunk_cache[cache_key] = spec
        path = write_artifact(
            FIXTURE_DIR / f"{invariant}.json", spec, [], invariant=invariant
        )
        print(f"  -> {path}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for repro.planner.scheduler - slot accounting and task diffs."""

import pytest

from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, sink, source, window_aggregate
from repro.engine.physical import PhysicalPlan
from repro.errors import InsufficientSlotsError, SchedulingError
from repro.planner.scheduler import Scheduler


def make_plan():
    ops = [
        source("src", "edge-x"),
        filter_("flt", selectivity=0.5),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5),
        sink("out"),
    ]
    logical = LogicalPlan.from_edges(
        "q", ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )
    return PhysicalPlan(logical)


ASSIGNMENTS = {
    "src": {"edge-x": 1},
    "agg": {"dc-1": 1},
    "out": {"dc-1": 1},
}


class TestDeploy:
    def test_deploy_allocates_slots(self, small_topology):
        scheduler = Scheduler(small_topology)
        scheduler.deploy(make_plan(), ASSIGNMENTS)
        assert small_topology.site("dc-1").used_slots == 2
        assert small_topology.site("edge-x").used_slots == 1

    def test_deploy_creates_tasks(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        assert plan.deployed()
        assert plan.stage("agg").initial_parallelism == 1

    def test_initial_slots_recorded(self, small_topology):
        scheduler = Scheduler(small_topology)
        scheduler.deploy(make_plan(), ASSIGNMENTS)
        assert scheduler.initial_slots == 3
        assert scheduler.extra_slots() == 0

    def test_missing_assignment_rejected(self, small_topology):
        scheduler = Scheduler(small_topology)
        with pytest.raises(SchedulingError):
            scheduler.deploy(make_plan(), {"src": {"edge-x": 1}})

    def test_double_deploy_rejected(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        with pytest.raises(SchedulingError):
            scheduler.deploy(plan, ASSIGNMENTS)

    def test_undeploy_releases_everything(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        scheduler.undeploy(plan)
        assert small_topology.total_used_slots() == 0
        assert plan.stage("agg").parallelism == 0


class TestMutations:
    @pytest.fixture
    def deployed(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        return scheduler, plan

    def test_reassign_computes_diff(self, deployed):
        scheduler, plan = deployed
        diff = scheduler.apply_assignment(plan.stage("agg"), {"dc-2": 1})
        assert diff.added == {"dc-2": 1}
        assert diff.removed == {"dc-1": 1}
        assert plan.stage("agg").placement() == {"dc-2": 1}

    def test_reassign_keeps_unmoved_tasks(self, deployed):
        """Section 4.1: only S - S' is migrated."""
        scheduler, plan = deployed
        stage = plan.stage("agg")
        scheduler.add_tasks(stage, {"dc-2": 1})
        original_task_ids = {t.task_id for t in stage.tasks if t.site == "dc-1"}
        diff = scheduler.apply_assignment(stage, {"dc-1": 1, "edge-x": 1})
        assert diff.removed == {"dc-2": 1}
        surviving = {t.task_id for t in stage.tasks if t.site == "dc-1"}
        assert surviving == original_task_ids

    def test_scale_up_adds_slots(self, deployed):
        scheduler, plan = deployed
        scheduler.add_tasks(plan.stage("agg"), {"dc-1": 2})
        assert plan.stage("agg").parallelism == 3
        assert scheduler.extra_slots() == 2

    def test_remove_task(self, deployed):
        scheduler, plan = deployed
        stage = plan.stage("agg")
        scheduler.add_tasks(stage, {"dc-2": 1})
        scheduler.remove_task(stage, "dc-2")
        assert stage.placement() == {"dc-1": 1}

    def test_remove_last_task_rejected(self, deployed):
        scheduler, plan = deployed
        with pytest.raises(SchedulingError):
            scheduler.remove_task(plan.stage("agg"), "dc-1")

    def test_remove_from_empty_site_rejected(self, deployed):
        scheduler, plan = deployed
        with pytest.raises(SchedulingError):
            scheduler.remove_task(plan.stage("agg"), "dc-2")

    def test_over_allocation_rolls_back(self, deployed):
        scheduler, plan = deployed
        stage = plan.stage("agg")
        used_before = {
            s: scheduler.topology.site(s).used_slots
            for s in scheduler.topology.site_names
        }
        with pytest.raises(InsufficientSlotsError):
            scheduler.apply_assignment(stage, {"dc-1": 1, "edge-x": 99})
        used_after = {
            s: scheduler.topology.site(s).used_slots
            for s in scheduler.topology.site_names
        }
        assert used_before == used_after

    def test_moved_pairs(self, deployed):
        scheduler, plan = deployed
        diff = scheduler.apply_assignment(plan.stage("agg"), {"dc-2": 1})
        assert diff.moved_pairs == 1


class TestFailureEvacuation:
    def test_evacuate_removes_stranded_tasks(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        small_topology.site("dc-1").fail()
        lost = scheduler.evacuate_failed_sites(plan)
        assert lost == {"agg": 1, "out": 1}
        assert plan.stage("agg").parallelism == 0

    def test_evacuate_noop_without_failures(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        assert scheduler.evacuate_failed_sites(plan) == {}
        assert plan.deployed()

    def test_evacuation_releases_failed_slots_wholesale(
        self, small_topology
    ):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        assert small_topology.site("dc-1").used_slots == 2
        small_topology.site("dc-1").fail()
        scheduler.evacuate_failed_sites(plan)
        # The site lost the slots anyway; accounting must not leak them.
        assert small_topology.site("dc-1").used_slots == 0
        # Surviving sites keep their allocations.
        assert small_topology.site("edge-x").used_slots == 1

    def test_partial_failure_spares_surviving_tasks(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(
            plan,
            {
                "src": {"edge-x": 1},
                "agg": {"dc-1": 1, "dc-2": 1},
                "out": {"dc-2": 1},
            },
        )
        small_topology.site("dc-1").fail()
        lost = scheduler.evacuate_failed_sites(plan)
        assert lost == {"agg": 1}
        assert plan.stage("agg").placement() == {"dc-2": 1}
        assert plan.stage("out").placement() == {"dc-2": 1}

    def test_evacuation_is_idempotent(self, small_topology):
        scheduler = Scheduler(small_topology)
        plan = make_plan()
        scheduler.deploy(plan, ASSIGNMENTS)
        small_topology.site("dc-1").fail()
        first = scheduler.evacuate_failed_sites(plan)
        second = scheduler.evacuate_failed_sites(plan)
        assert first == {"agg": 1, "out": 1}
        assert second == {}

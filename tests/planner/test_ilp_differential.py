"""Differential test: placement solvers vs brute-force enumeration.

For instances small enough to enumerate exhaustively (<= 3 sites, <= 3
tasks), every optimizer in the planner stack - the greedy reduction
(``solve_placement``), the scipy MILP cross-check (``solve_with_milp``)
and the branch-and-bound ILP solver - must agree with the brute-force
optimum of the Section 4.1 program: minimize the latency objective over
all integer assignments satisfying the alpha-headroom flow caps (Eqs 2-3),
slot capacities (Eq 4) and full deployment (Eq 5).

The brute force restates the constraints directly from the equations (with
the same strict-inequality epsilon shave the planner documents), sharing
only ``site_cost_ms`` - the objective is not under test, the search is.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.runtime import MBIT_BYTES
from repro.errors import InfeasiblePlacementError
from repro.planner.ilp import (
    Infeasible,
    IntegerProgram,
    solve_branch_and_bound,
)
from repro.planner.placement import (
    DownstreamDemand,
    PlacementProblem,
    UpstreamFlow,
    site_cost_ms,
    solve_placement,
    solve_with_milp,
)

SITES = ("s0", "s1", "s2")
_EPS_SHAVE = 1e-9


class DictNetwork:
    def __init__(self, bandwidth: dict, latency: dict) -> None:
        self._bw = bandwidth
        self._lat = latency

    def bandwidth_mbps(self, src: str, dst: str) -> float:
        return self._bw[(src, dst)]

    def latency_ms(self, src: str, dst: str) -> float:
        return self._lat[(src, dst)]


bw_values = st.floats(min_value=0.5, max_value=200.0, allow_nan=False)
lat_values = st.floats(min_value=1.0, max_value=150.0, allow_nan=False)
eps_values = st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False)


@st.composite
def instances(draw):
    n_sites = draw(st.integers(min_value=2, max_value=3))
    sites = SITES[:n_sites]
    pairs = [(a, b) for a in sites for b in sites if a != b]
    bandwidth = {pair: draw(bw_values) for pair in pairs}
    latency = {pair: draw(lat_values) for pair in pairs}
    for site in sites:
        bandwidth[(site, site)] = float("inf")
        latency[(site, site)] = 0.0
    parallelism = draw(st.integers(min_value=1, max_value=3))
    slots = {
        site: draw(st.integers(min_value=0, max_value=3)) for site in sites
    }
    upstream = [
        UpstreamFlow(
            site=draw(st.sampled_from(sites)),
            eps=draw(eps_values),
            event_bytes=draw(st.sampled_from([100.0, 200.0])),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    ]
    downstream = [
        DownstreamDemand(
            site=draw(st.sampled_from(sites)),
            fraction=draw(st.floats(min_value=0.0, max_value=1.0,
                                    allow_nan=False)),
            eps=draw(eps_values),
            event_bytes=draw(st.sampled_from([100.0, 200.0])),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    ]
    problem = PlacementProblem(
        parallelism=parallelism,
        upstream=upstream,
        downstream=downstream,
        available_slots=slots,
        alpha=draw(st.sampled_from([0.6, 0.8, 0.9])),
    )
    return problem, DictNetwork(bandwidth, latency)


def assignment_feasible(assignment, problem, network) -> bool:
    """Equations 2-4, restated directly (strict via the documented shave)."""
    p = problem.parallelism
    for site, tasks in assignment.items():
        if tasks > problem.available_slots.get(site, 0):
            return False
        if tasks == 0:
            continue
        for flow in problem.upstream:
            if flow.site == site or flow.eps <= 0:
                continue
            bw_eps = (
                network.bandwidth_mbps(flow.site, site)
                * MBIT_BYTES
                / flow.event_bytes
            )
            if tasks > problem.alpha * bw_eps * p / flow.eps - _EPS_SHAVE:
                return False
        for demand in problem.downstream:
            out_to_d = demand.eps * demand.fraction
            if demand.site == site or out_to_d <= 0:
                continue
            bw_eps = (
                network.bandwidth_mbps(site, demand.site)
                * MBIT_BYTES
                / demand.event_bytes
            )
            if tasks > problem.alpha * bw_eps * p / out_to_d - _EPS_SHAVE:
                return False
    return True


def brute_force(problem, network):
    """Optimal cost over all full assignments, or None if infeasible."""
    sites = sorted(problem.available_slots)
    costs = {s: site_cost_ms(s, problem, network) for s in sites}
    best = None
    ranges = [range(problem.available_slots[s] + 1) for s in sites]
    for combo in itertools.product(*ranges):
        if sum(combo) != problem.parallelism:
            continue
        assignment = dict(zip(sites, combo))
        if not assignment_feasible(assignment, problem, network):
            continue
        cost = sum(costs[s] * n for s, n in assignment.items())
        if best is None or cost < best:
            best = cost
    return best


class TestPlacementDifferential:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_all_solvers_match_brute_force(self, instance):
        problem, network = instance
        expected = brute_force(problem, network)
        if expected is None:
            with pytest.raises(InfeasiblePlacementError):
                solve_placement(problem, network)
            with pytest.raises(InfeasiblePlacementError):
                solve_with_milp(problem, network)
            return
        greedy = solve_placement(problem, network)
        milp = solve_with_milp(problem, network)
        for solution in (greedy, milp):
            assert solution.total_tasks() == problem.parallelism
            assert assignment_feasible(
                solution.assignment, problem, network
            ), "solver returned an assignment violating Eqs 2-4"
            assert solution.cost == pytest.approx(
                expected, rel=1e-9, abs=1e-6
            )

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_branch_and_bound_matches_brute_force(self, instance):
        """The generic ILP solver, fed the same Eq 1-5 system."""
        problem, network = instance
        sites = sorted(problem.available_slots)
        costs = np.array(
            [site_cost_ms(s, problem, network) for s in sites]
        )
        caps = np.array(
            [
                max(
                    (
                        n
                        for n in range(
                            problem.available_slots[s] + 1
                        )
                        if assignment_feasible({s: n}, problem, network)
                    ),
                    default=0,
                )
                for s in sites
            ],
            dtype=float,
        )
        program = IntegerProgram(
            c=costs,
            a_eq=np.ones((1, len(sites))),
            b_eq=np.array([float(problem.parallelism)]),
            lb=np.zeros(len(sites)),
            ub=caps,
        )
        expected = brute_force(problem, network)
        if expected is None:
            with pytest.raises(Infeasible):
                solve_branch_and_bound(program)
            return
        solution = solve_branch_and_bound(program)
        assert solution.objective == pytest.approx(
            expected, rel=1e-9, abs=1e-6
        )
        assert solution.x.sum() == pytest.approx(problem.parallelism)

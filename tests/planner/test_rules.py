"""Tests for repro.planner.rules - logical plan rewrites."""

import pytest

from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, map_, sink, source, union
from repro.planner.rules import (
    merge_consecutive_filters,
    optimize,
    prune_noop_maps,
    push_filter_below_union,
)


def union_filter_plan():
    ops = [
        source("a", "x", event_bytes=100),
        source("b", "y", event_bytes=100),
        union("u"),
        filter_("flt", selectivity=0.25, event_bytes=100),
        sink("out"),
    ]
    edges = [("a", "u"), ("b", "u"), ("u", "flt"), ("flt", "out")]
    return LogicalPlan.from_edges("q", ops, edges)


class TestFilterBelowUnion:
    def test_filter_cloned_per_branch(self):
        rewritten = push_filter_below_union(union_filter_plan())
        assert "flt@a" in rewritten and "flt@b" in rewritten
        assert "flt" not in rewritten

    def test_union_feeds_sink_directly(self):
        rewritten = push_filter_below_union(union_filter_plan())
        assert [d.name for d in rewritten.downstream("u")] == ["out"]

    def test_branch_filters_preserve_selectivity(self):
        rewritten = push_filter_below_union(union_filter_plan())
        assert rewritten.operators["flt@a"].selectivity == 0.25

    def test_sink_rate_unchanged(self):
        """The rewrite must be semantics-preserving."""
        original = union_filter_plan()
        rewritten = push_filter_below_union(original)
        rates = {"a": 100.0, "b": 300.0}
        assert original.propagate_rates(rates)["out"] == pytest.approx(
            rewritten.propagate_rates(rates)["out"]
        )

    def test_not_applied_when_union_has_other_consumers(self):
        ops = [
            source("a", "x"),
            source("b", "y"),
            union("u"),
            filter_("flt", selectivity=0.5),
            map_("tap"),
            sink("out"),
            sink("out2"),
        ]
        edges = [
            ("a", "u"), ("b", "u"), ("u", "flt"), ("u", "tap"),
            ("flt", "out"), ("tap", "out2"),
        ]
        plan = LogicalPlan.from_edges("q", ops, edges)
        assert push_filter_below_union(plan) is plan

    def test_noop_without_union(self):
        ops = [source("a", "x"), filter_("f", selectivity=0.5), sink("out")]
        plan = LogicalPlan.from_edges("q", ops, [("a", "f"), ("f", "out")])
        assert push_filter_below_union(plan) is plan


class TestMergeFilters:
    def test_adjacent_filters_fuse(self):
        ops = [
            source("a", "x"),
            filter_("f1", selectivity=0.5),
            filter_("f2", selectivity=0.4),
            sink("out"),
        ]
        edges = [("a", "f1"), ("f1", "f2"), ("f2", "out")]
        plan = LogicalPlan.from_edges("q", ops, edges)
        merged = merge_consecutive_filters(plan)
        assert "f2" not in merged
        assert merged.operators["f1"].selectivity == pytest.approx(0.2)

    def test_merge_preserves_rates(self):
        ops = [
            source("a", "x"),
            filter_("f1", selectivity=0.5),
            filter_("f2", selectivity=0.4),
            sink("out"),
        ]
        edges = [("a", "f1"), ("f1", "f2"), ("f2", "out")]
        plan = LogicalPlan.from_edges("q", ops, edges)
        merged = merge_consecutive_filters(plan)
        rates = {"a": 1000.0}
        assert plan.propagate_rates(rates)["out"] == pytest.approx(
            merged.propagate_rates(rates)["out"]
        )

    def test_fan_out_filter_not_merged(self):
        ops = [
            source("a", "x"),
            filter_("f1", selectivity=0.5),
            filter_("f2", selectivity=0.4),
            map_("tap"),
            sink("out"),
            sink("out2"),
        ]
        edges = [
            ("a", "f1"), ("f1", "f2"), ("f1", "tap"),
            ("f2", "out"), ("tap", "out2"),
        ]
        plan = LogicalPlan.from_edges("q", ops, edges)
        assert merge_consecutive_filters(plan) is plan


class TestPruneNoopMaps:
    def test_identity_map_removed(self):
        ops = [
            source("a", "x", event_bytes=100),
            map_("noop", event_bytes=100),
            sink("out"),
        ]
        plan = LogicalPlan.from_edges(
            "q", ops, [("a", "noop"), ("noop", "out")]
        )
        pruned = prune_noop_maps(plan)
        assert "noop" not in pruned
        assert [d.name for d in pruned.downstream("a")] == ["out"]

    def test_size_changing_map_kept(self):
        ops = [
            source("a", "x", event_bytes=200),
            map_("shrink", event_bytes=50),
            sink("out"),
        ]
        plan = LogicalPlan.from_edges(
            "q", ops, [("a", "shrink"), ("shrink", "out")]
        )
        assert prune_noop_maps(plan) is plan

    def test_filtering_map_kept(self):
        ops = [
            source("a", "x", event_bytes=100),
            map_("m", event_bytes=100, selectivity=0.5),
            sink("out"),
        ]
        plan = LogicalPlan.from_edges("q", ops, [("a", "m"), ("m", "out")])
        assert prune_noop_maps(plan) is plan


class TestFixedPoint:
    def test_optimize_applies_all_rules(self):
        ops = [
            source("a", "x", event_bytes=100),
            source("b", "y", event_bytes=100),
            union("u", event_bytes=100),
            filter_("f1", selectivity=0.5, event_bytes=100),
            filter_("f2", selectivity=0.5, event_bytes=100),
            map_("noop", event_bytes=100),
            sink("out"),
        ]
        edges = [
            ("a", "u"), ("b", "u"), ("u", "f1"), ("f1", "f2"),
            ("f2", "noop"), ("noop", "out"),
        ]
        plan = LogicalPlan.from_edges("q", ops, edges)
        optimized = optimize(plan)
        # noop pruned; f1+f2 merged; merged filter pushed below the union.
        assert "noop" not in optimized
        assert "f1@a" in optimized and "f1@b" in optimized
        rates = {"a": 100.0, "b": 100.0}
        assert plan.propagate_rates(rates)["out"] == pytest.approx(
            optimized.propagate_rates(rates)["out"]
        )

    def test_optimize_terminates_on_fixed_plan(self):
        ops = [source("a", "x"), filter_("f", selectivity=0.5), sink("out")]
        plan = LogicalPlan.from_edges("q", ops, [("a", "f"), ("f", "out")])
        assert optimize(plan) is plan

"""Tests for repro.planner.enumerate - plan-variant enumeration."""

import pytest

from repro.engine.logical import can_replace_preserving_state
from repro.engine.operators import filter_, join, sink, source, union, window_aggregate
from repro.errors import PlanError
from repro.planner.enumerate import (
    aggregation_grouping_plans,
    branch_from_ops,
    enumerate_join_trees,
    join_tree_plans,
    region_groupings,
)


def make_branches(keys):
    branches = []
    for key in keys:
        src = source(f"src@{key}", key, event_bytes=100)
        flt = filter_(f"flt@{key}", selectivity=0.5, event_bytes=100)
        branches.append(branch_from_ops(key, [src, flt]))
    return branches


def join_factory(name, leaves):
    return join(name, selectivity=1.0, state_mb=2.0 * len(leaves),
                window_s=10.0)


class TestJoinTrees:
    @pytest.mark.parametrize("k,count", [(2, 1), (3, 3), (4, 15)])
    def test_double_factorial_counts(self, k, count):
        keys = [f"s{i}" for i in range(k)]
        assert len(enumerate_join_trees(keys)) == count

    def test_single_input_rejected(self):
        with pytest.raises(PlanError):
            enumerate_join_trees(["a"])

    def test_canonical_names_by_leaf_set(self):
        trees = enumerate_join_trees(["b", "a"])
        assert trees[0].canonical_name() == "join{a+b}"

    def test_subtrees_children_first(self):
        trees = enumerate_join_trees(["a", "b", "c"])
        for tree in trees:
            nodes = tree.subtrees()
            assert nodes[-1].leaves == frozenset({"a", "b", "c"})


class TestJoinTreePlans:
    def test_plans_are_valid(self):
        plans = join_tree_plans(
            "q", make_branches(["a", "b", "c"]), join_factory
        )
        assert len(plans) == 3
        for plan in plans:
            assert len(plan.sources()) == 3
            assert len(plan.sinks()) == 1

    def test_shared_subsets_share_operator_names(self):
        plans = join_tree_plans(
            "q", make_branches(["a", "b", "c"]), join_factory
        )
        roots = {"join{a+b+c}"}
        for plan in plans:
            assert roots & set(plan.operators)

    def test_same_subset_same_signature_across_plans(self):
        """join{a+b} in two different bracketings is the same sub-plan."""
        plans = join_tree_plans(
            "q", make_branches(["a", "b", "c", "d"]), join_factory
        )
        with_ab = [p for p in plans if "join{a+b}" in p]
        assert len(with_ab) >= 2
        sigs = {p.subplan_signature("join{a+b}") for p in with_ab}
        assert len(sigs) == 1

    def test_windowed_plans_interchange(self):
        plans = join_tree_plans(
            "q", make_branches(["a", "b", "c"]), join_factory
        )
        assert can_replace_preserving_state(plans[0], plans[1])

    def test_max_variants_cap(self):
        plans = join_tree_plans(
            "q", make_branches(["a", "b", "c", "d"]), join_factory,
            max_variants=5,
        )
        assert len(plans) == 5

    def test_duplicate_branch_keys_rejected(self):
        branches = make_branches(["a"]) + make_branches(["a"])
        with pytest.raises(PlanError):
            join_tree_plans("q", branches, join_factory)

    def test_non_canonical_factory_name_rejected(self):
        def bad_factory(name, leaves):
            return join("wrong-name", selectivity=1.0, state_mb=1.0)

        with pytest.raises(PlanError):
            join_tree_plans("q", make_branches(["a", "b"]), bad_factory)


def partial_factory(name, members):
    return window_aggregate(
        name, window_s=30, selectivity=0.1, state_mb=2.0, event_bytes=100
    )


class TestAggregationGroupings:
    def final_ops(self):
        return [
            window_aggregate(
                "final", window_s=30, selectivity=0.05, state_mb=50,
                event_bytes=100,
            )
        ]

    def test_direct_grouping_has_no_partials(self):
        branches = make_branches(["a", "b", "c", "d"])
        plans = aggregation_grouping_plans(
            "q", branches, [[["a"], ["b"], ["c"], ["d"]]], partial_factory,
            self.final_ops(),
        )
        assert not any("pre{" in name for name in plans[0].operators)

    def test_grouped_plan_has_canonical_partials(self):
        branches = make_branches(["a", "b", "c", "d"])
        plans = aggregation_grouping_plans(
            "q", branches, [[["a", "b"], ["c", "d"]]], partial_factory,
            self.final_ops(),
        )
        assert "pre{a+b}" in plans[0] and "pre{c+d}" in plans[0]

    def test_incomplete_partition_rejected(self):
        branches = make_branches(["a", "b"])
        with pytest.raises(PlanError):
            aggregation_grouping_plans(
                "q", branches, [[["a"]]], partial_factory, self.final_ops()
            )

    def test_selectivity_normalized_across_variants(self):
        """Every variant must produce the same sink rate (equivalence)."""
        branches = make_branches(["a", "b", "c", "d"])
        groupings = [
            [["a"], ["b"], ["c"], ["d"]],
            [["a", "b"], ["c", "d"]],
            [["a", "b", "c", "d"]],
        ]
        plans = aggregation_grouping_plans(
            "q", branches, groupings, partial_factory, self.final_ops()
        )
        rates = {f"src@{k}": 1000.0 for k in ("a", "b", "c", "d")}
        sink_rates = [p.propagate_rates(rates)["sink"] for p in plans]
        for rate in sink_rates[1:]:
            assert rate == pytest.approx(sink_rates[0], rel=1e-9)

    def test_normalization_can_be_disabled(self):
        branches = make_branches(["a", "b"])
        plans = aggregation_grouping_plans(
            "q", branches, [[["a", "b"]]], partial_factory, self.final_ops(),
            normalize_selectivity=False,
        )
        assert plans[0].operators["final"].selectivity == 0.05


class TestRegionGroupings:
    def test_includes_direct(self):
        groupings = region_groupings({"a": "r1", "b": "r1", "c": "r2"})
        assert [["a"], ["b"], ["c"]] in groupings

    def test_includes_regional(self):
        groupings = region_groupings({"a": "r1", "b": "r1", "c": "r2"})
        assert any(["a", "b"] in g for g in groupings)

    def test_includes_global(self):
        groupings = region_groupings({"a": "r1", "b": "r2"})
        assert [["a", "b"]] in groupings

    def test_no_duplicates(self):
        groupings = region_groupings({"a": "r1", "b": "r1"})
        assert len(groupings) == len({str(g) for g in groupings})

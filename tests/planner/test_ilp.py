"""Tests for repro.planner.ilp - the branch-and-bound solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.planner.ilp import (
    Infeasible,
    IntegerProgram,
    solve_branch_and_bound,
)


class TestBasicSolving:
    def test_unconstrained_minimum_at_lower_bounds(self):
        program = IntegerProgram(
            c=np.array([1.0, 2.0]), lb=np.zeros(2), ub=np.array([5.0, 5.0])
        )
        solution = solve_branch_and_bound(program)
        assert solution.objective == 0.0

    def test_equality_constraint(self):
        # min x0 + 3 x1  s.t.  x0 + x1 == 4, 0 <= x <= 3
        program = IntegerProgram(
            c=np.array([1.0, 3.0]),
            a_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([4.0]),
            lb=np.zeros(2),
            ub=np.array([3.0, 3.0]),
        )
        solution = solve_branch_and_bound(program)
        assert list(solution.x) == [3.0, 1.0]
        assert solution.objective == pytest.approx(6.0)

    def test_inequality_constraint(self):
        # max x (== min -x) s.t. 2x <= 7, integer -> x = 3.
        program = IntegerProgram(
            c=np.array([-1.0]),
            a_ub=np.array([[2.0]]),
            b_ub=np.array([7.0]),
            lb=np.zeros(1),
            ub=np.array([10.0]),
        )
        solution = solve_branch_and_bound(program)
        assert solution.x[0] == 3.0

    def test_knapsack(self):
        # max 10a + 6b + 4c s.t. a+b+c <= 2, binary.
        program = IntegerProgram(
            c=np.array([-10.0, -6.0, -4.0]),
            a_ub=np.array([[1.0, 1.0, 1.0]]),
            b_ub=np.array([2.0]),
            lb=np.zeros(3),
            ub=np.ones(3),
        )
        solution = solve_branch_and_bound(program)
        assert solution.objective == pytest.approx(-16.0)

    def test_infeasible_raises(self):
        program = IntegerProgram(
            c=np.array([1.0]),
            a_eq=np.array([[1.0]]),
            b_eq=np.array([5.0]),
            lb=np.zeros(1),
            ub=np.array([2.0]),
        )
        with pytest.raises(Infeasible):
            solve_branch_and_bound(program)

    def test_fractional_lp_optimum_forces_branching(self):
        # LP relaxation optimum is x = 3.5; integers give 3.
        program = IntegerProgram(
            c=np.array([-1.0]),
            a_ub=np.array([[2.0]]),
            b_ub=np.array([7.0]),
            lb=np.zeros(1),
            ub=np.array([100.0]),
        )
        solution = solve_branch_and_bound(program)
        assert solution.x[0] == 3.0
        assert solution.nodes_explored >= 2


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(PlacementError):
            IntegerProgram(c=np.array([]))

    def test_mismatched_constraint_width_rejected(self):
        with pytest.raises(PlacementError):
            IntegerProgram(
                c=np.array([1.0]), a_ub=np.array([[1.0, 2.0]]),
                b_ub=np.array([1.0]),
            )

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(PlacementError):
            IntegerProgram(c=np.array([1.0, 2.0]), lb=np.zeros(3))


class TestAgainstScipyMilp:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scipy_on_placement_shaped_instances(
        self, n_sites, p, seed
    ):
        """Random placement-shaped ILPs: min c.x, sum x = p, 0 <= x <= u."""
        from scipy.optimize import Bounds, LinearConstraint, milp

        rng = np.random.default_rng(seed)
        c = rng.uniform(1.0, 100.0, n_sites)
        ub = rng.integers(0, 6, n_sites).astype(float)
        if ub.sum() < p:
            return  # infeasible by construction; covered elsewhere
        program = IntegerProgram(
            c=c,
            a_eq=np.ones((1, n_sites)),
            b_eq=np.array([float(p)]),
            lb=np.zeros(n_sites),
            ub=ub,
        )
        ours = solve_branch_and_bound(program)
        reference = milp(
            c=c,
            constraints=[LinearConstraint(np.ones((1, n_sites)), p, p)],
            integrality=np.ones(n_sites),
            bounds=Bounds(0, ub),
        )
        assert reference.success
        assert ours.objective == pytest.approx(reference.fun, rel=1e-6)

"""Tests for repro.planner.cost - joint plan + placement estimation."""

import math

import pytest

from repro.engine.logical import LogicalPlan
from repro.engine.operators import filter_, sink, source, union, window_aggregate
from repro.errors import InfeasiblePlacementError, PlanError
from repro.network.monitor import WanMonitor
from repro.planner.cost import choose_best_deployment, estimate_deployment


def simple_plan(name="q", agg_bytes=100.0):
    ops = [
        source("src", "edge-x", event_bytes=200),
        filter_("flt", selectivity=0.5, event_bytes=agg_bytes),
        window_aggregate("agg", window_s=10, selectivity=0.01, state_mb=5),
        sink("out"),
    ]
    return LogicalPlan.from_edges(
        name, ops, [("src", "flt"), ("flt", "agg"), ("agg", "out")]
    )


@pytest.fixture
def monitor(small_topology, rng):
    m = WanMonitor(small_topology, rng)
    m.refresh(0.0)
    return m


class TestEstimation:
    def test_sources_pinned(self, small_topology, monitor):
        estimate = estimate_deployment(
            simple_plan(), monitor, small_topology.available_slots(),
            {"src": 1000.0},
        )
        assert estimate.assignments["src"] == {"edge-x": 1}

    def test_all_stages_assigned(self, small_topology, monitor):
        estimate = estimate_deployment(
            simple_plan(), monitor, small_topology.available_slots(),
            {"src": 1000.0},
        )
        assert set(estimate.assignments) == {"src", "agg", "out"}
        assert estimate.feasible

    def test_source_slots_consumed(self, small_topology, monitor):
        """Regression: sources occupy slots the estimator must account for."""
        slots = {"edge-x": 1, "dc-1": 0, "dc-2": 0}
        estimate = estimate_deployment(
            simple_plan(), monitor, slots, {"src": 100.0}
        )
        # edge-x's only slot goes to the source; nothing left for agg.
        assert not estimate.feasible

    def test_parallelism_override(self, small_topology, monitor):
        estimate = estimate_deployment(
            simple_plan(), monitor, small_topology.available_slots(),
            {"src": 1000.0}, parallelism={"agg": 3},
        )
        assert sum(estimate.assignments["agg"].values()) == 3

    def test_infeasible_reports_reason(self, small_topology, monitor):
        # 60_000 eps * 100 B = 48 Mbps out of edge-x; its links carry 15,
        # and with edge-x full the flow cannot stay local either.
        estimate = estimate_deployment(
            simple_plan(), monitor,
            {"edge-x": 1, "dc-1": 8, "dc-2": 8},
            {"src": 120_000.0},
        )
        assert not estimate.feasible
        assert math.isinf(estimate.delay_score_ms)
        assert "agg" in estimate.infeasible_reason

    def test_relaxed_always_feasible_given_slots(self, small_topology, monitor):
        estimate = estimate_deployment(
            simple_plan(), monitor,
            {"edge-x": 1, "dc-1": 8, "dc-2": 8},
            {"src": 120_000.0}, relaxed=True,
        )
        assert estimate.feasible

    def test_wan_mbps_accounts_cross_site_flows(self, small_topology, monitor):
        estimate = estimate_deployment(
            simple_plan(), monitor, small_topology.available_slots(),
            {"src": 1000.0},
        )
        # 500 eps * 100 B = 0.4 Mbps crosses edge-x -> agg site at minimum
        # (zero only if everything co-locates at edge-x, which slots allow).
        assert estimate.wan_mbps >= 0.0


class TestChoice:
    def test_chooses_lower_bandwidth_variant(self, small_topology, monitor):
        """Figure 5: with equal latency structure the planner prefers the
        plan consuming less WAN bandwidth."""
        heavy = simple_plan("heavy", agg_bytes=150.0)
        light = simple_plan("light", agg_bytes=50.0)
        best = choose_best_deployment(
            [heavy, light], monitor,
            {"edge-x": 1, "dc-1": 8, "dc-2": 8},
            {"src": 5000.0},
        )
        assert best.logical.name == "light"

    def test_feasible_beats_infeasible(self, small_topology, monitor):
        ok = simple_plan("ok", agg_bytes=50.0)
        too_big = simple_plan("big", agg_bytes=5000.0)
        best = choose_best_deployment(
            [too_big, ok], monitor,
            {"edge-x": 1, "dc-1": 8, "dc-2": 8},
            {"src": 5000.0},
        )
        assert best.logical.name == "ok"

    def test_all_infeasible_raises(self, small_topology, monitor):
        with pytest.raises(InfeasiblePlacementError):
            choose_best_deployment(
                [simple_plan()], monitor,
                {"edge-x": 1, "dc-1": 8, "dc-2": 8},
                {"src": 10_000_000.0},
            )

    def test_no_variants_rejected(self, small_topology, monitor):
        with pytest.raises(PlanError):
            choose_best_deployment(
                [], monitor, small_topology.available_slots(), {}
            )

    def test_better_than_ordering(self, small_topology, monitor):
        a = estimate_deployment(
            simple_plan("a"), monitor, small_topology.available_slots(),
            {"src": 1000.0},
        )
        assert a.better_than(None)
        assert not a.better_than(a)

"""Tests for repro.planner.placement - the Equations 1-5 ILP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.runtime import mbps_to_eps
from repro.errors import InfeasiblePlacementError, PlacementError
from repro.planner.placement import (
    DownstreamDemand,
    PlacementProblem,
    UpstreamFlow,
    max_placeable_tasks,
    per_site_capacity,
    site_cost_ms,
    solve_placement,
    solve_with_milp,
)


class GridNetwork:
    """Synthetic network view backed by dictionaries."""

    def __init__(self, bandwidth, latency, default_bw=100.0, default_lat=50.0):
        self.bw = dict(bandwidth)
        self.lat = dict(latency)
        self.default_bw = default_bw
        self.default_lat = default_lat

    def bandwidth_mbps(self, src, dst):
        if src == dst:
            return 100_000.0
        return self.bw.get((src, dst), self.default_bw)

    def latency_ms(self, src, dst):
        if src == dst:
            return 0.5
        return self.lat.get((src, dst), self.default_lat)


def problem(p=2, *, slots=None, upstream=None, downstream=None, alpha=0.8,
            relaxed=False):
    return PlacementProblem(
        parallelism=p,
        upstream=upstream or [UpstreamFlow("u", 1000.0, 100.0)],
        downstream=downstream or [],
        available_slots=slots or {"a": 4, "b": 4, "u": 4},
        alpha=alpha,
        relaxed=relaxed,
    )


class TestObjective:
    def test_prefers_low_latency_site(self):
        network = GridNetwork({}, {("u", "a"): 10.0, ("u", "b"): 200.0})
        solution = solve_placement(
            problem(p=1, slots={"a": 4, "b": 4}), network
        )
        assert solution.assignment == {"a": 1}

    def test_traffic_weighted_upstream_latency(self):
        """A torrent from u1 outweighs a trickle from u2."""
        network = GridNetwork(
            {},
            {
                ("u1", "a"): 10.0, ("u2", "a"): 500.0,
                ("u1", "b"): 500.0, ("u2", "b"): 10.0,
            },
        )
        upstream = [
            UpstreamFlow("u1", 10_000.0, 100.0),
            UpstreamFlow("u2", 10.0, 100.0),
        ]
        solution = solve_placement(
            problem(p=1, upstream=upstream, slots={"a": 1, "b": 1}), network
        )
        assert solution.assignment == {"a": 1}

    def test_downstream_latency_counts(self):
        network = GridNetwork(
            {},
            {
                ("u", "a"): 50.0, ("u", "b"): 50.0,
                ("a", "d"): 5.0, ("b", "d"): 300.0,
            },
        )
        downstream = [DownstreamDemand("d", 1.0, 500.0, 100.0)]
        solution = solve_placement(
            problem(p=1, downstream=downstream, slots={"a": 1, "b": 1}),
            network,
        )
        assert solution.assignment == {"a": 1}

    def test_co_location_is_cheap(self):
        network = GridNetwork({}, {("u", "a"): 100.0})
        solution = solve_placement(
            problem(p=1, slots={"a": 1, "u": 1}), network
        )
        assert solution.assignment == {"u": 1}


class TestConstraints:
    def test_slot_capacity_respected(self):
        network = GridNetwork({}, {("u", "a"): 1.0, ("u", "b"): 100.0})
        solution = solve_placement(
            problem(p=3, slots={"a": 2, "b": 4}), network
        )
        assert solution.assignment == {"a": 2, "b": 1}

    def test_bandwidth_cap_limits_tasks(self):
        """Constraint 2: flow share into a site must fit alpha * B."""
        # Flow 1000 eps at 100 B = 0.8 Mbps. With B = 0.6 Mbps and
        # alpha = 0.8 the budget is 0.48 Mbps: one of two tasks fits
        # (0.4 Mbps share), two do not.
        network = GridNetwork(
            {("u", "a"): 0.6, ("u", "b"): 100.0}, {}
        )
        capacity = per_site_capacity("a", problem(p=2), network)
        assert capacity == 1

    def test_local_flow_needs_no_bandwidth(self):
        network = GridNetwork({("u", "a"): 0.0001}, {})
        capacity = per_site_capacity(
            "u", problem(p=2, slots={"u": 2, "a": 2}), network
        )
        assert capacity == 2

    def test_outbound_constraint(self):
        """Constraint 3: output share to a downstream site must fit."""
        network = GridNetwork({("a", "d"): 0.1}, {})
        downstream = [DownstreamDemand("d", 1.0, 10_000.0, 100.0)]
        capacity = per_site_capacity(
            "a", problem(p=1, downstream=downstream), network
        )
        assert capacity == 0

    def test_infeasible_raises(self):
        network = GridNetwork(
            {("u", "a"): 0.01, ("u", "b"): 0.01}, {}
        )
        with pytest.raises(InfeasiblePlacementError):
            solve_placement(problem(p=2, slots={"a": 4, "b": 4}), network)

    def test_relaxed_ignores_bandwidth(self):
        network = GridNetwork({("u", "a"): 0.01, ("u", "b"): 0.01}, {})
        solution = solve_placement(
            problem(p=2, slots={"a": 4, "b": 4}, relaxed=True), network
        )
        assert solution.total_tasks() == 2

    def test_all_tasks_deployed(self):
        """Constraint 5: the system deploys all p tasks."""
        network = GridNetwork({}, {})
        solution = solve_placement(problem(p=5), network)
        assert solution.total_tasks() == 5

    def test_max_placeable_tasks(self):
        network = GridNetwork({("u", "a"): 0.6, ("u", "b"): 0.6}, {})
        # Each site caps at 1 of 2 tasks via bandwidth; slots allow 4.
        assert max_placeable_tasks(problem(p=2, slots={"a": 4, "b": 4}),
                                   network) == 2


class TestValidation:
    def test_zero_parallelism_rejected(self):
        with pytest.raises(PlacementError):
            problem(p=0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(PlacementError):
            problem(alpha=1.5)

    def test_empty_sites_rejected(self):
        with pytest.raises(PlacementError):
            PlacementProblem(
                parallelism=1, upstream=[], downstream=[], available_slots={}
            )


class TestGreedyOptimality:
    """The greedy reduction must match the MILP reference exactly."""

    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # slots
                st.floats(min_value=0.1, max_value=50.0),  # bandwidth
                st.floats(min_value=1.0, max_value=300.0),  # latency
            ),
            min_size=2,
            max_size=6,
        ),
        st.floats(min_value=100.0, max_value=20_000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_matches_milp(self, p, sites, flow_eps):
        slots = {f"s{i}": spec[0] for i, spec in enumerate(sites)}
        bandwidth = {("u", f"s{i}"): spec[1] for i, spec in enumerate(sites)}
        latency = {("u", f"s{i}"): spec[2] for i, spec in enumerate(sites)}
        network = GridNetwork(bandwidth, latency)
        prob = PlacementProblem(
            parallelism=p,
            upstream=[UpstreamFlow("u", flow_eps, 100.0)],
            downstream=[],
            available_slots=slots,
            alpha=0.8,
        )
        try:
            greedy = solve_placement(prob, network)
        except InfeasiblePlacementError:
            with pytest.raises(InfeasiblePlacementError):
                solve_with_milp(prob, network)
            return
        milp = solve_with_milp(prob, network)
        assert greedy.cost == pytest.approx(milp.cost, rel=1e-6)
        assert greedy.total_tasks() == p

    def test_greedy_cost_reported(self):
        network = GridNetwork({}, {("u", "a"): 10.0, ("u", "b"): 30.0})
        solution = solve_placement(problem(p=2, slots={"a": 1, "b": 1}),
                                   network)
        assert solution.cost == pytest.approx(40.0)
        assert solution.per_site_cost["a"] == pytest.approx(10.0)


class TestHeadroomSemantics:
    def test_alpha_leaves_bandwidth_headroom(self):
        """At alpha=0.8 a link is never planned above 80% utilization."""
        flow_eps = mbps_to_eps(10.0, 100.0)  # exactly fills a 10 Mbps link
        network = GridNetwork({("u", "a"): 10.0}, {})
        prob = problem(
            p=1,
            upstream=[UpstreamFlow("u", flow_eps, 100.0)],
            slots={"a": 1},
        )
        with pytest.raises(InfeasiblePlacementError):
            solve_placement(prob, network)

    def test_fits_within_headroom(self):
        flow_eps = mbps_to_eps(10.0, 100.0) * 0.7  # 70% < alpha
        network = GridNetwork({("u", "a"): 10.0}, {})
        prob = problem(
            p=1,
            upstream=[UpstreamFlow("u", flow_eps, 100.0)],
            slots={"a": 1},
        )
        assert solve_placement(prob, network).assignment == {"a": 1}

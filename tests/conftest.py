"""Shared fixtures for the WASP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import WaspConfig
from repro.network.site import Site, SiteKind
from repro.network.topology import Topology
from repro.network.traces import paper_testbed
from repro.sim.rng import RngRegistry


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def config() -> WaspConfig:
    return WaspConfig.paper_defaults()


@pytest.fixture
def small_topology() -> Topology:
    """Three sites with simple, hand-picked links.

    edge-x --(10 Mbps, 50 ms)--> dc-1 --(100 Mbps, 20 ms)--> dc-2
    plus the reverse directions and the edge-x <-> dc-2 diagonal.
    """
    topo = Topology(
        [
            Site("edge-x", SiteKind.EDGE, 4),
            Site("dc-1", SiteKind.DATA_CENTER, 8),
            Site("dc-2", SiteKind.DATA_CENTER, 8),
        ]
    )
    topo.set_link("edge-x", "dc-1", 10.0, 50.0)
    topo.set_link("dc-1", "edge-x", 10.0, 50.0)
    topo.set_link("dc-1", "dc-2", 100.0, 20.0)
    topo.set_link("dc-2", "dc-1", 100.0, 20.0)
    topo.set_link("edge-x", "dc-2", 5.0, 70.0)
    topo.set_link("dc-2", "edge-x", 5.0, 70.0)
    return topo


@pytest.fixture
def testbed(rngs: RngRegistry) -> Topology:
    """The paper's 16-node testbed (seeded)."""
    return paper_testbed(rngs.stream("topology"))

"""Tests for repro.config."""

import pytest

from repro.config import DEFAULT_CONFIG, WaspConfig
from repro.errors import ConfigurationError


class TestPaperDefaults:
    def test_alpha_is_point_eight(self):
        assert WaspConfig.paper_defaults().alpha == 0.8

    def test_p_max_is_three(self):
        assert WaspConfig.paper_defaults().p_max == 3

    def test_monitor_interval_forty_seconds(self):
        assert WaspConfig.paper_defaults().monitor_interval_s == 40.0

    def test_checkpoint_interval_thirty_seconds(self):
        assert WaspConfig.paper_defaults().checkpoint_interval_s == 30.0

    def test_slo_ten_seconds(self):
        assert WaspConfig.paper_defaults().slo_s == 10.0

    def test_default_config_matches_paper_defaults(self):
        assert DEFAULT_CONFIG == WaspConfig.paper_defaults()


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 1.5])
    def test_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            WaspConfig(alpha=alpha)

    @pytest.mark.parametrize("alpha", [0.01, 0.5, 0.8, 0.99])
    def test_alpha_in_range_accepted(self, alpha):
        assert WaspConfig(alpha=alpha).alpha == alpha

    def test_p_max_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(p_max=0)

    def test_negative_t_max_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(t_max_s=-1.0)

    def test_zero_monitor_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(monitor_interval_s=0)

    def test_zero_checkpoint_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(checkpoint_interval_s=0)

    def test_zero_tick_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(tick_s=0)

    def test_zero_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(slo_s=0)

    def test_waste_utilization_one_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(waste_utilization=1.0)

    def test_scale_down_step_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(scale_down_step=0)

    def test_max_scale_out_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(max_scale_out_per_round=0)

    def test_negative_estimation_error_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(estimation_error=-0.1)

    def test_negative_base_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(reconfig_base_overhead_s=-1)

    def test_negative_replan_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(replan_deploy_overhead_s=-1)

    def test_negative_replan_cooldown_rejected(self):
        with pytest.raises(ConfigurationError):
            WaspConfig(replan_cooldown_s=-1)


class TestOverrides:
    def test_with_overrides_changes_field(self):
        config = WaspConfig.paper_defaults().with_overrides(alpha=0.5)
        assert config.alpha == 0.5

    def test_with_overrides_keeps_other_fields(self):
        config = WaspConfig.paper_defaults().with_overrides(alpha=0.5)
        assert config.p_max == WaspConfig.paper_defaults().p_max

    def test_with_overrides_revalidates(self):
        with pytest.raises(ConfigurationError):
            WaspConfig.paper_defaults().with_overrides(alpha=2.0)

    def test_config_is_frozen(self):
        config = WaspConfig.paper_defaults()
        with pytest.raises(AttributeError):
            config.alpha = 0.5  # type: ignore[misc]
